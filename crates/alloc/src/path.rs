//! Source-route paths through the NoC.
//!
//! aelite uses source routing (paper Section III): the packet header
//! carries the output-port index for every router along the way. A
//! [`Path`] is exactly that port list plus its NI endpoints.
//!
//! [`route_candidates`] enumerates minimal-hop paths for the allocator:
//! dimension-ordered XY and YX routes first (cheap, deadlock-free on
//! meshes and — irrelevantly but pleasantly — contention-friendly), then
//! all remaining shortest paths discovered by BFS, capped to keep
//! allocation time bounded.

use aelite_spec::ids::{LinkId, NiId, Port, RouterId};
use aelite_spec::topology::{PortTarget, Topology};
use core::fmt;
use std::collections::VecDeque;

/// A source-routed path from one NI to another.
///
/// `ports[i]` is the output port taken at the *i*-th router; the last port
/// faces the destination NI. The links traversed are the NI ingress link
/// followed by one link per port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Source network interface.
    pub src: NiId,
    /// Destination network interface.
    pub dst: NiId,
    /// Output port taken at each router along the way.
    pub ports: Vec<Port>,
}

impl Path {
    /// The number of routers traversed.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.ports.len()
    }

    /// The number of links traversed (NI ingress + one per router).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.ports.len() + 1
    }

    /// The ordered links this path occupies, starting with the source NI's
    /// ingress link. A flit injected in TDM slot *s* occupies
    /// `links(topo)[i]` during slot *s + i*.
    ///
    /// # Errors
    ///
    /// Returns a [`PathError`] if the port sequence does not lead from
    /// `src` to `dst` in this topology.
    pub fn links(&self, topo: &Topology) -> Result<Vec<LinkId>, PathError> {
        let mut links = Vec::with_capacity(self.link_count());
        links.push(topo.ni_ingress_link(self.src));
        let mut router = topo.ni_router(self.src);
        for (i, &port) in self.ports.iter().enumerate() {
            let target = topo
                .port_target(router, port)
                .ok_or(PathError::NoSuchPort { router, port })?;
            let link = topo
                .out_link(router, port)
                .ok_or(PathError::NoSuchPort { router, port })?;
            links.push(link);
            match target {
                PortTarget::Router(next) => {
                    if i + 1 == self.ports.len() {
                        return Err(PathError::EndsAtRouter { router: next });
                    }
                    router = next;
                }
                PortTarget::Ni(ni) => {
                    if i + 1 != self.ports.len() {
                        return Err(PathError::EntersNiMidway { ni });
                    }
                    if ni != self.dst {
                        return Err(PathError::WrongDestination {
                            expected: self.dst,
                            actual: ni,
                        });
                    }
                }
            }
        }
        if self.ports.is_empty() {
            return Err(PathError::Empty);
        }
        Ok(links)
    }

    /// The routers visited, in order.
    ///
    /// # Errors
    ///
    /// Returns a [`PathError`] if the port sequence is invalid (see
    /// [`links`](Self::links)).
    pub fn routers(&self, topo: &Topology) -> Result<Vec<RouterId>, PathError> {
        // Validate first so the walk below cannot step off the topology.
        self.links(topo)?;
        let mut routers = vec![topo.ni_router(self.src)];
        let mut router = topo.ni_router(self.src);
        for &port in &self.ports[..self.ports.len() - 1] {
            match topo.port_target(router, port) {
                Some(PortTarget::Router(next)) => {
                    routers.push(next);
                    router = next;
                }
                _ => unreachable!("validated above"),
            }
        }
        Ok(routers)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->", self.src)?;
        for p in &self.ports {
            write!(f, " {p}")?;
        }
        write!(f, " -> {}", self.dst)
    }
}

/// Why a port sequence is not a valid path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// The path has no ports at all.
    Empty,
    /// A router was asked for a port it does not have.
    NoSuchPort {
        /// Router missing the port.
        router: RouterId,
        /// The out-of-range port.
        port: Port,
    },
    /// The final port faces another router instead of an NI.
    EndsAtRouter {
        /// The router the path dangles into.
        router: RouterId,
    },
    /// A non-final port faces an NI.
    EntersNiMidway {
        /// The NI entered too early.
        ni: NiId,
    },
    /// The final port faces an NI other than the declared destination.
    WrongDestination {
        /// Declared destination.
        expected: NiId,
        /// NI the ports actually lead to.
        actual: NiId,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no hops"),
            PathError::NoSuchPort { router, port } => {
                write!(f, "{router} has no port {port}")
            }
            PathError::EndsAtRouter { router } => {
                write!(f, "path ends at {router} instead of an NI")
            }
            PathError::EntersNiMidway { ni } => {
                write!(f, "path enters {ni} before its final hop")
            }
            PathError::WrongDestination { expected, actual } => {
                write!(f, "path reaches {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Builds the dimension-ordered path between two NIs on a mesh:
/// first along `x`, then along `y` when `x_first`, otherwise the reverse.
///
/// Returns `None` when the topology has no mesh coordinates or a needed
/// neighbour port is missing (irregular topology).
#[must_use]
pub fn dimension_ordered(topo: &Topology, src: NiId, dst: NiId, x_first: bool) -> Option<Path> {
    let (mut x, mut y) = topo.coords(topo.ni_router(src))?;
    let (tx, ty) = topo.coords(topo.ni_router(dst))?;
    let mut ports = Vec::new();
    let mut router = topo.ni_router(src);
    let step = |router: &mut RouterId, nx: u32, ny: u32, ports: &mut Vec<Port>| -> Option<()> {
        let next = topo.router_at(nx, ny)?;
        let port = topo.port_towards(*router, PortTarget::Router(next))?;
        ports.push(port);
        *router = next;
        Some(())
    };
    let walk_x =
        |x: &mut u32, y: u32, router: &mut RouterId, ports: &mut Vec<Port>| -> Option<()> {
            while *x != tx {
                let nx = if *x < tx { *x + 1 } else { *x - 1 };
                step(router, nx, y, ports)?;
                *x = nx;
            }
            Some(())
        };
    let walk_y =
        |x: u32, y: &mut u32, router: &mut RouterId, ports: &mut Vec<Port>| -> Option<()> {
            while *y != ty {
                let ny = if *y < ty { *y + 1 } else { *y - 1 };
                step(router, x, ny, ports)?;
                *y = ny;
            }
            Some(())
        };
    if x_first {
        walk_x(&mut x, y, &mut router, &mut ports)?;
        walk_y(x, &mut y, &mut router, &mut ports)?;
    } else {
        walk_y(x, &mut y, &mut router, &mut ports)?;
        walk_x(&mut x, y, &mut router, &mut ports)?;
    }
    let last = topo.port_towards(router, PortTarget::Ni(dst))?;
    ports.push(last);
    Some(Path { src, dst, ports })
}

/// Router-hop slack allowed beyond the minimum when enumerating route
/// candidates: each extra hop costs one flit cycle of pipeline latency but
/// buys path diversity, which the allocator needs when the minimal routes
/// are fragmented (straight-line mesh pairs have only one shortest path).
pub const ROUTE_SLACK_HOPS: u32 = 2;

/// Enumerates up to `max` distinct paths from `src` to `dst`, shortest
/// first: XY and YX (when the topology is a mesh), then every other simple
/// path within [`ROUTE_SLACK_HOPS`] extra router hops of the minimum,
/// ordered by length.
///
/// Always returns at least one path when the NIs are connected.
#[must_use]
pub fn route_candidates(topo: &Topology, src: NiId, dst: NiId, max: usize) -> Vec<Path> {
    let (mut out, complete) = initial_candidates(topo, src, dst, max);
    if !complete {
        detour_candidates(topo, src, dst, max, &mut out);
    }
    out
}

/// The cheap first stage of [`route_candidates`]: the dimension-ordered
/// XY and YX routes (deduplicated). Returns the prefix of the candidate
/// list and whether it is already complete (`max` reached), letting the
/// route cache defer the expensive DFS stage until a caller actually
/// exhausts these candidates.
pub(crate) fn initial_candidates(
    topo: &Topology,
    src: NiId,
    dst: NiId,
    max: usize,
) -> (Vec<Path>, bool) {
    let mut out: Vec<Path> = Vec::new();
    for x_first in [true, false] {
        if let Some(p) = dimension_ordered(topo, src, dst, x_first) {
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    if out.len() >= max {
        out.truncate(max);
        (out, true)
    } else {
        (out, false)
    }
}

/// The second stage of [`route_candidates`]: appends every other simple
/// path within [`ROUTE_SLACK_HOPS`] of the minimum (ordered by length,
/// deduplicated against `out`) until `max` candidates are collected.
pub(crate) fn detour_candidates(
    topo: &Topology,
    src: NiId,
    dst: NiId,
    max: usize,
    out: &mut Vec<Path>,
) {
    let mut extra = bounded_paths(topo, src, dst, ROUTE_SLACK_HOPS, max.saturating_mul(4));
    extra.sort_by_key(Path::router_count);
    for p in extra {
        if out.len() >= max {
            break;
        }
        if !out.contains(&p) {
            out.push(p);
        }
    }
}

/// All simple router-level paths between two NIs whose router-hop count is
/// within `slack` of the minimum, up to `cap` results.
fn bounded_paths(topo: &Topology, src: NiId, dst: NiId, slack: u32, cap: usize) -> Vec<Path> {
    let start = topo.ni_router(src);
    let goal = topo.ni_router(dst);

    // BFS distances from the goal router.
    let mut dist = vec![u32::MAX; topo.router_count()];
    dist[goal.index()] = 0;
    let mut q = VecDeque::from([goal]);
    while let Some(r) = q.pop_front() {
        for (_, target) in topo.ports(r) {
            if let PortTarget::Router(n) = target {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = dist[r.index()] + 1;
                    q.push_back(n);
                }
            }
        }
    }
    if dist[start.index()] == u32::MAX {
        return Vec::new();
    }
    let limit = dist[start.index()] + slack;

    // Depth-first search with a hop budget; `visited` keeps paths simple.
    // Backtracking shares one `visited` vector and one `ports` prefix
    // across the whole walk, so nothing is allocated per expansion — only
    // per emitted result. Children are explored in reverse port order,
    // which is exactly the order the previous explicit-stack (LIFO)
    // implementation popped them in, preserving result order bit-for-bit.
    let mut results = Vec::new();
    let mut visited = vec![false; topo.router_count()];
    visited[start.index()] = true;
    let mut ports: Vec<Port> = Vec::new();
    dfs_bounded(
        topo,
        DfsGoal { src, dst, goal },
        start,
        &dist,
        limit,
        cap,
        &mut visited,
        &mut ports,
        &mut results,
    );
    results
}

/// The fixed parameters of one [`bounded_paths`] search.
#[derive(Clone, Copy)]
struct DfsGoal {
    src: NiId,
    dst: NiId,
    goal: RouterId,
}

#[allow(clippy::too_many_arguments)]
fn dfs_bounded(
    topo: &Topology,
    g: DfsGoal,
    r: RouterId,
    dist: &[u32],
    limit: u32,
    cap: usize,
    visited: &mut [bool],
    ports: &mut Vec<Port>,
    results: &mut Vec<Path>,
) {
    if results.len() >= cap {
        return;
    }
    if r == g.goal {
        if let Some(last) = topo.port_towards(r, PortTarget::Ni(g.dst)) {
            let mut full = ports.clone();
            full.push(last);
            results.push(Path {
                src: g.src,
                dst: g.dst,
                ports: full,
            });
        }
        return;
    }
    // Buffer the router's ports so they can be walked in reverse without
    // allocating (router arity is small and bounded).
    let mut buf = [(Port(0), RouterId::new(0)); MAX_ROUTER_ARITY];
    let mut n = 0;
    for (port, target) in topo.ports(r) {
        if let PortTarget::Router(next) = target {
            assert!(n < MAX_ROUTER_ARITY, "router arity exceeds DFS buffer");
            buf[n] = (port, next);
            n += 1;
        }
    }
    let hops_if_taken = ports.len() as u32 + 1;
    for &(port, next) in buf[..n].iter().rev() {
        if !visited[next.index()] && hops_if_taken + dist[next.index()] <= limit {
            visited[next.index()] = true;
            ports.push(port);
            dfs_bounded(topo, g, next, dist, limit, cap, visited, ports, results);
            ports.pop();
            visited[next.index()] = false;
        }
    }
}

/// Upper bound on router arity assumed by the path search's stack buffer
/// (the paper evaluates arities 2–7; 32 leaves generous headroom).
const MAX_ROUTER_ARITY: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Topology {
        Topology::mesh(4, 3, 4)
    }

    fn ni_at(topo: &Topology, x: u32, y: u32, i: usize) -> NiId {
        let r = topo.router_at(x, y).unwrap();
        topo.router_nis(r).nth(i).unwrap()
    }

    #[test]
    fn xy_path_has_manhattan_length() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 3, 2, 0);
        let p = dimension_ordered(&t, a, b, true).unwrap();
        // 3 x-hops + 2 y-hops + final NI port = 6 ports; 6 routers visited.
        assert_eq!(p.router_count(), 6);
        assert_eq!(p.link_count(), 7);
        p.links(&t).unwrap();
    }

    #[test]
    fn xy_and_yx_differ_for_diagonal_pairs() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 2, 2, 0);
        let xy = dimension_ordered(&t, a, b, true).unwrap();
        let yx = dimension_ordered(&t, a, b, false).unwrap();
        assert_ne!(xy, yx);
        assert_eq!(xy.router_count(), yx.router_count());
    }

    #[test]
    fn same_router_pair_uses_single_hop() {
        let t = mesh();
        let a = ni_at(&t, 1, 1, 0);
        let b = ni_at(&t, 1, 1, 2);
        let p = dimension_ordered(&t, a, b, true).unwrap();
        assert_eq!(p.router_count(), 1);
        let links = p.links(&t).unwrap();
        assert_eq!(links.len(), 2); // NI in, NI out
    }

    #[test]
    fn path_links_shift_one_per_hop() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 1, 0, 0);
        let p = dimension_ordered(&t, a, b, true).unwrap();
        let links = p.links(&t).unwrap();
        assert_eq!(links[0], t.ni_ingress_link(a));
        assert_eq!(*links.last().unwrap(), t.ni_egress_link(b));
    }

    #[test]
    fn routers_lists_visited_routers() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 2, 0, 0);
        let p = dimension_ordered(&t, a, b, true).unwrap();
        let routers = p.routers(&t).unwrap();
        assert_eq!(
            routers,
            vec![
                t.router_at(0, 0).unwrap(),
                t.router_at(1, 0).unwrap(),
                t.router_at(2, 0).unwrap()
            ]
        );
    }

    #[test]
    fn candidates_are_distinct_valid_and_shortest_first() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 2, 1, 0);
        let cands = route_candidates(&t, a, b, 8);
        assert!(cands.len() >= 2, "expected XY and YX at least");
        let min = cands.iter().map(Path::router_count).min().unwrap();
        // XY/YX come first and are minimal; lengths never decrease after.
        assert_eq!(cands[0].router_count(), min);
        for w in cands.windows(2) {
            assert!(w[0].router_count() <= w[1].router_count());
        }
        for (i, p) in cands.iter().enumerate() {
            assert!(p.router_count() <= min + ROUTE_SLACK_HOPS as usize);
            p.links(&t).unwrap();
            for (j, q) in cands.iter().enumerate() {
                if i != j {
                    assert_ne!(p, q);
                }
            }
        }
    }

    #[test]
    fn candidate_count_matches_lattice_paths() {
        // Between (0,0) and (2,1) there are C(3,1)=3 shortest router walks;
        // with detour slack there are more, but exactly 3 minimal ones.
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 2, 1, 0);
        let cands = route_candidates(&t, a, b, 64);
        let min = cands.iter().map(Path::router_count).min().unwrap();
        let minimal = cands.iter().filter(|p| p.router_count() == min).count();
        assert_eq!(minimal, 3);
        assert!(cands.len() > 3, "detour paths expected");
    }

    #[test]
    fn straight_line_pairs_get_detour_candidates() {
        // (0,0) -> (3,0): a single shortest path, but detours exist.
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 3, 0, 0);
        let cands = route_candidates(&t, a, b, 12);
        assert!(cands.len() >= 4, "got only {} candidates", cands.len());
        let min = cands[0].router_count();
        assert!(cands.iter().filter(|p| p.router_count() == min).count() == 1);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 1, 0, 0);
        // Empty path.
        let p = Path {
            src: a,
            dst: b,
            ports: vec![],
        };
        assert_eq!(p.links(&t), Err(PathError::Empty));
        // Path that stops at a router.
        let good = dimension_ordered(&t, a, b, true).unwrap();
        let mut short = good.clone();
        short.ports.pop();
        assert!(matches!(
            short.links(&t),
            Err(PathError::EndsAtRouter { .. })
        ));
        // Path to the wrong NI.
        let c = ni_at(&t, 1, 0, 1);
        let mut wrong = good.clone();
        wrong.dst = c;
        assert!(matches!(
            wrong.links(&t),
            Err(PathError::WrongDestination { .. })
        ));
        // Port out of range.
        let mut bogus = good;
        bogus.ports[0] = Port(99);
        assert!(matches!(bogus.links(&t), Err(PathError::NoSuchPort { .. })));
    }

    #[test]
    fn enters_ni_midway_is_detected() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 1, 0, 0);
        // First hop straight into a local NI, then more ports.
        let local = ni_at(&t, 0, 0, 1);
        let r0 = t.router_at(0, 0).unwrap();
        let port_to_local = t.port_towards(r0, PortTarget::Ni(local)).unwrap();
        let p = Path {
            src: a,
            dst: b,
            ports: vec![port_to_local, Port(0)],
        };
        assert!(matches!(p.links(&t), Err(PathError::EntersNiMidway { .. })));
    }

    #[test]
    fn display_shows_route() {
        let t = mesh();
        let a = ni_at(&t, 0, 0, 0);
        let b = ni_at(&t, 1, 0, 0);
        let p = dimension_ordered(&t, a, b, true).unwrap();
        let s = p.to_string();
        assert!(s.starts_with(&a.to_string()), "{s}");
        assert!(s.ends_with(&b.to_string()), "{s}");
    }

    #[test]
    fn path_error_display() {
        let e = PathError::WrongDestination {
            expected: NiId::new(1),
            actual: NiId::new(2),
        };
        assert!(e.to_string().contains("NI1"));
        assert!(e.to_string().contains("NI2"));
    }
}
