//! Homogeneous synchronous dataflow (HSDF) graphs and throughput analysis.
//!
//! The paper models its flit-synchronous elements as dataflow actors
//! (Sections V–VI, citing Lee & Parks \[19\]): the mesochronous FSM and
//! the asynchronous wrapper both "fire" once per flit cycle when tokens
//! and space are available, and footnote 1 proposes analysing
//! heterochronous aelite instances "by modelling the links, NIs and
//! routers in a dataflow graph". This module provides that machinery.
//!
//! An HSDF actor consumes one token per input edge and produces one per
//! output edge each firing, after its execution time. The steady-state
//! throughput of a strongly-connected HSDF graph is `1 / MCM`, where the
//! **maximum cycle mean** is
//!
//! ```text
//! MCM = max over cycles C of ( sum of execution times on C )
//!                            / ( sum of initial tokens on C )
//! ```
//!
//! computed here by bisection on λ with Bellman-Ford negative-cycle
//! detection — robust for the small graphs aelite produces.

use core::fmt;

/// An actor index within a [`HsdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(usize);

impl ActorId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Actor {
    name: String,
    /// Execution time per firing, in arbitrary consistent time units.
    exec_time: f64,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    tokens: u32,
}

/// A homogeneous SDF graph.
///
/// # Examples
///
/// A two-actor pipeline with a 2-deep channel and its feedback edge:
///
/// ```
/// use aelite_dataflow::graph::HsdfGraph;
///
/// let mut g = HsdfGraph::new();
/// let producer = g.add_actor("producer", 3.0);
/// let consumer = g.add_actor("consumer", 3.0);
/// g.add_edge(producer, consumer, 0); // data
/// g.add_edge(consumer, producer, 2); // space (capacity 2)
/// let mcm = g.maximum_cycle_mean().expect("cyclic graph");
/// assert!((mcm - 3.0).abs() < 1e-6); // limited by the actors, not space
/// ```
#[derive(Debug, Clone, Default)]
pub struct HsdfGraph {
    actors: Vec<Actor>,
    edges: Vec<Edge>,
}

impl HsdfGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        HsdfGraph::default()
    }

    /// Adds an actor with the given per-firing execution time.
    ///
    /// # Panics
    ///
    /// Panics if `exec_time` is negative or not finite.
    pub fn add_actor(&mut self, name: impl Into<String>, exec_time: f64) -> ActorId {
        assert!(
            exec_time.is_finite() && exec_time >= 0.0,
            "execution time must be finite and non-negative"
        );
        let id = ActorId(self.actors.len());
        self.actors.push(Actor {
            name: name.into(),
            exec_time,
        });
        id
    }

    /// Adds a directed edge with `tokens` initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not an actor of this graph.
    pub fn add_edge(&mut self, from: ActorId, to: ActorId, tokens: u32) {
        assert!(from.0 < self.actors.len(), "unknown {from}");
        assert!(to.0 < self.actors.len(), "unknown {to}");
        self.edges.push(Edge {
            from: from.0,
            to: to.0,
            tokens,
        });
    }

    /// Adds a channel of `capacity` between two actors: a forward data
    /// edge with no initial tokens and a backward space edge holding
    /// `capacity` tokens — the standard model of a bounded FIFO (and of
    /// the wrapper's OPI space accounting).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity channel deadlocks).
    pub fn add_channel(&mut self, from: ActorId, to: ActorId, capacity: u32) {
        assert!(capacity > 0, "channel capacity must be non-zero");
        self.add_edge(from, to, 0);
        self.add_edge(to, from, capacity);
    }

    /// Number of actors.
    #[must_use]
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The name of `actor`.
    #[must_use]
    pub fn actor_name(&self, actor: ActorId) -> &str {
        &self.actors[actor.0].name
    }

    /// The maximum cycle mean (time units per token), or `None` for an
    /// acyclic graph (unbounded pipeline: no steady-state constraint).
    ///
    /// The steady-state firing rate of every actor in a strongly
    /// connected graph is `1 / MCM`.
    #[must_use]
    pub fn maximum_cycle_mean(&self) -> Option<f64> {
        if !self.has_cycle() {
            return None;
        }
        // Bisection on lambda: a cycle with mean > lambda exists iff the
        // graph with edge weight (lambda * tokens - exec_time(from)) has a
        // negative cycle.
        let mut lo = 0.0_f64;
        let mut hi = self.actors.iter().map(|a| a.exec_time).sum::<f64>() + 1.0;
        // A cycle with zero tokens and positive exec time diverges — that
        // is a deadlock (infinite MCM), reported as f64::INFINITY.
        if self.has_negative_cycle(hi) {
            return Some(f64::INFINITY);
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.has_negative_cycle(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// The steady-state throughput in firings per time unit (`1 / MCM`),
    /// `None` for acyclic graphs, and `0` for deadlocked ones.
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        self.maximum_cycle_mean().map(|mcm| {
            if mcm.is_infinite() {
                0.0
            } else if mcm == 0.0 {
                f64::INFINITY
            } else {
                1.0 / mcm
            }
        })
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm: cycle iff topological sort is incomplete.
        let n = self.actors.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for e in self.edges.iter().filter(|e| e.from == v) {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        seen < n
    }

    /// Bellman-Ford negative-cycle detection on weights
    /// `lambda * tokens - exec_time(from)`.
    fn has_negative_cycle(&self, lambda: f64) -> bool {
        let n = self.actors.len();
        if n == 0 {
            return false;
        }
        let mut dist = vec![0.0_f64; n];
        for round in 0..n {
            let mut changed = false;
            for e in &self.edges {
                let w = lambda * f64::from(e.tokens) - self.actors[e.from].exec_time;
                if dist[e.from] + w < dist[e.to] - 1e-12 {
                    dist[e.to] = dist[e.from] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n - 1 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loop_mcm_is_exec_over_tokens() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 6.0);
        g.add_edge(a, a, 2);
        let mcm = g.maximum_cycle_mean().unwrap();
        assert!((mcm - 3.0).abs() < 1e-6, "{mcm}");
        assert!((g.throughput().unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn two_actor_ring_sums_exec_times() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 3.0);
        let b = g.add_actor("b", 5.0);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 1);
        // One token circulates the whole ring: MCM = (3+5)/1 = 8.
        let mcm = g.maximum_cycle_mean().unwrap();
        assert!((mcm - 8.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn extra_tokens_pipeline_the_ring() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 3.0);
        let b = g.add_actor("b", 5.0);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 2);
        // Two tokens: MCM = max(8/2, slowest actor alone...) — the cycle
        // bound is 4, but actor b needs 5 per firing; with no self-loops
        // the model allows overlapping firings, so the cycle gives 4.
        let mcm = g.maximum_cycle_mean().unwrap();
        assert!((mcm - 4.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn self_loops_model_non_reentrant_actors() {
        // Adding 1-token self-loops forbids overlapped firings; the
        // slowest actor then bounds the rate.
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 3.0);
        let b = g.add_actor("b", 5.0);
        g.add_edge(a, a, 1);
        g.add_edge(b, b, 1);
        g.add_channel(a, b, 4);
        let mcm = g.maximum_cycle_mean().unwrap();
        assert!((mcm - 5.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn acyclic_graph_has_no_mcm() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 2.0);
        g.add_edge(a, b, 0);
        assert_eq!(g.maximum_cycle_mean(), None);
        assert_eq!(g.throughput(), None);
    }

    #[test]
    fn tokenless_cycle_deadlocks() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 0);
        assert_eq!(g.maximum_cycle_mean(), Some(f64::INFINITY));
        assert_eq!(g.throughput(), Some(0.0));
    }

    #[test]
    fn channel_capacity_limits_throughput() {
        // Chain of three 3-unit actors with capacity-1 channels: each
        // channel cycle a<->b has exec 3+3 = 6 over 1 token = 6.
        let chain = |cap: u32| {
            let mut g = HsdfGraph::new();
            let a = g.add_actor("a", 3.0);
            let b = g.add_actor("b", 3.0);
            let c = g.add_actor("c", 3.0);
            g.add_channel(a, b, cap);
            g.add_channel(b, c, cap);
            g.maximum_cycle_mean().unwrap()
        };
        let mcm1 = chain(1);
        assert!((mcm1 - 6.0).abs() < 1e-6, "{mcm1}");
        // Capacity 2 halves the per-channel pressure.
        let mcm2 = chain(2);
        assert!((mcm2 - 3.0).abs() < 1e-6, "{mcm2}");
    }

    #[test]
    fn directed_data_ring_without_tokens_deadlocks() {
        // A closed ring of channels all in one direction has no initial
        // data token anywhere: nothing can ever fire.
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 3.0);
        let b = g.add_actor("b", 3.0);
        let c = g.add_actor("c", 3.0);
        g.add_channel(a, b, 1);
        g.add_channel(b, c, 1);
        g.add_channel(c, a, 1);
        assert_eq!(g.maximum_cycle_mean(), Some(f64::INFINITY));
    }

    #[test]
    fn mcm_picks_the_worst_cycle() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        let c = g.add_actor("c", 10.0);
        // Fast ring a<->b and slow ring a<->c.
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 1);
        g.add_edge(a, c, 0);
        g.add_edge(c, a, 1);
        let mcm = g.maximum_cycle_mean().unwrap();
        assert!((mcm - 11.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn actor_metadata_accessible() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("router R3", 3.0);
        assert_eq!(g.actor_name(a), "router R3");
        assert_eq!(g.actor_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(a.index(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_channel_rejected() {
        let mut g = HsdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_channel(a, b, 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_exec_time_rejected() {
        let mut g = HsdfGraph::new();
        let _ = g.add_actor("bad", -1.0);
    }
}
