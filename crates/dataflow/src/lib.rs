//! # aelite-dataflow — HSDF throughput analysis for flit-synchronous NoCs
//!
//! The paper frames its mesochronous FSM and asynchronous wrapper as
//! dataflow actors (Sections V–VI) and proposes, in footnote 1, analysing
//! heterochronous aelite instances "by modelling the links, NIs and
//! routers in a dataflow graph". This crate implements that direction:
//!
//! * [`graph`] — homogeneous SDF graphs with maximum-cycle-mean analysis
//!   (bisection + Bellman-Ford), yielding steady-state throughput.
//! * [`models`] — builders for aelite structures (wrapped-element
//!   chains), cross-checked against the token-level wrapper simulation.
//! * [`sdf`] — multirate SDF with HSDF expansion, analysing the paper's
//!   *other* named future work: link-width conversion (a k:1 converter is
//!   a rate-k actor).
//!
//! # Examples
//!
//! ```
//! use aelite_dataflow::models::{predicted_flit_rate_per_us, wrapper_chain};
//!
//! // NI -> router -> NI, the router clocked 2% slow.
//! let chain = wrapper_chain(&[500.0, 490.0, 500.0], 3, 2);
//! let rate = predicted_flit_rate_per_us(&chain);
//! // The slowest element dictates the NoC rate (paper Section VI-A).
//! assert!((rate - 490.0 / 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod models;
pub mod sdf;

pub use graph::{ActorId, HsdfGraph};
pub use models::{predicted_flit_rate_per_us, wrapper_chain, WrapperChainModel};
pub use sdf::{SdfActorId, SdfGraph};
