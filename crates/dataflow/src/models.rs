//! Dataflow models of aelite structures (the paper's footnote 1).
//!
//! "Performance analysis of a heterochronous aelite implementation is
//! possible by modelling the links, NIs and routers in a dataflow graph"
//! — these builders construct exactly those graphs, and the wrapper
//! experiments cross-check the predictions against the token-level
//! simulation in `aelite-noc::wrapper`.

use crate::graph::{ActorId, HsdfGraph};

/// A dataflow model of a chain of wrapped elements
/// (NI → router → … → NI) connected by token channels.
#[derive(Debug)]
pub struct WrapperChainModel {
    /// The graph.
    pub graph: HsdfGraph,
    /// One actor per element, in chain order.
    pub actors: Vec<ActorId>,
}

/// Builds the HSDF model of a chain of wrapped elements.
///
/// * `element_frequencies_mhz` — the local clock of each element in chain
///   order (NIs and routers alike);
/// * `flit_words` — words per flit (3 in the paper): one firing takes
///   `flit_words` local cycles;
/// * `channel_capacity` — tokens per asynchronous link (the wrapper's
///   input FIFO depth).
///
/// Every actor gets a 1-token self-loop (an element cannot overlap its
/// own flit cycles) and every adjacent pair a bounded channel in both
/// directions of travel (data forward, synchronisation/space backward) —
/// the PIC fires only when all its PIs fire.
///
/// # Panics
///
/// Panics if fewer than two elements are given, any frequency is
/// non-positive, or `channel_capacity` is zero.
#[must_use]
pub fn wrapper_chain(
    element_frequencies_mhz: &[f64],
    flit_words: u32,
    channel_capacity: u32,
) -> WrapperChainModel {
    assert!(
        element_frequencies_mhz.len() >= 2,
        "a chain needs at least two elements"
    );
    assert!(channel_capacity > 0, "channel capacity must be non-zero");
    let mut graph = HsdfGraph::new();
    let actors: Vec<ActorId> = element_frequencies_mhz
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            assert!(f > 0.0, "element {i} frequency must be positive");
            // One firing = one flit cycle = flit_words cycles, in ns.
            let exec_ns = f64::from(flit_words) * 1_000.0 / f;
            let a = graph.add_actor(format!("element{i}"), exec_ns);
            graph.add_edge(a, a, 1); // non-reentrant
            a
        })
        .collect();
    for pair in actors.windows(2) {
        graph.add_channel(pair[0], pair[1], channel_capacity);
    }
    WrapperChainModel { graph, actors }
}

/// The predicted steady-state flit rate of the chain, in flits per
/// microsecond.
///
/// # Panics
///
/// Panics if the model deadlocks (zero-capacity channels cannot occur by
/// construction, so this indicates an internal error).
#[must_use]
pub fn predicted_flit_rate_per_us(model: &WrapperChainModel) -> f64 {
    let mcm_ns = model
        .graph
        .maximum_cycle_mean()
        .expect("wrapper chains are cyclic by construction");
    assert!(mcm_ns.is_finite(), "wrapper chain model deadlocked");
    1_000.0 / mcm_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_chain_runs_at_flit_cycle_rate() {
        // Three 500 MHz elements: flit cycle = 6 ns, rate = 166.7 /us.
        let m = wrapper_chain(&[500.0, 500.0, 500.0], 3, 2);
        let rate = predicted_flit_rate_per_us(&m);
        assert!((rate - 1_000.0 / 6.0).abs() < 1e-6, "{rate}");
    }

    #[test]
    fn slowest_element_dictates_the_rate() {
        // Section VI-A: "the aelite NoC only runs as fast as the slowest
        // router or NI."
        let m = wrapper_chain(&[500.0, 490.0, 510.0], 3, 2);
        let rate = predicted_flit_rate_per_us(&m);
        let slowest = 1_000.0 / (3.0 * 1_000.0 / 490.0);
        assert!((rate - slowest).abs() < 1e-6, "{rate} vs {slowest}");
    }

    #[test]
    fn capacity_one_channels_halve_the_rate() {
        // With a single token per channel, neighbouring firings cannot
        // overlap: the two-actor channel cycle costs both exec times.
        let fast = wrapper_chain(&[500.0, 500.0], 3, 2);
        let slow = wrapper_chain(&[500.0, 500.0], 3, 1);
        let r_fast = predicted_flit_rate_per_us(&fast);
        let r_slow = predicted_flit_rate_per_us(&slow);
        assert!((r_fast / r_slow - 2.0).abs() < 1e-6, "{r_fast} vs {r_slow}");
    }

    #[test]
    fn long_chains_do_not_degrade_rate() {
        // Pipelining: 10 elements at the same frequency still run at the
        // single-element rate (capacity >= 2).
        let freqs = vec![500.0; 10];
        let m = wrapper_chain(&freqs, 3, 2);
        let rate = predicted_flit_rate_per_us(&m);
        assert!((rate - 1_000.0 / 6.0).abs() < 1e-6, "{rate}");
    }

    #[test]
    fn actors_are_named_by_position() {
        let m = wrapper_chain(&[500.0, 400.0], 3, 2);
        assert_eq!(m.graph.actor_name(m.actors[0]), "element0");
        assert_eq!(m.graph.actor_name(m.actors[1]), "element1");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_element_chain_rejected() {
        let _ = wrapper_chain(&[500.0], 3, 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = wrapper_chain(&[500.0, 0.0], 3, 2);
    }
}
