//! Multirate synchronous dataflow (SDF) with HSDF expansion.
//!
//! The paper's concluding future work: "we aim to extend aelite with
//! link-width conversion". A link-width converter joins *k* narrow flits
//! into one wide flit (or splits, in the other direction) — a multirate
//! actor, which plain HSDF cannot express. This module adds SDF graphs
//! with production/consumption rates and the classical expansion to HSDF
//! (one copy per firing in the repetition vector), so the existing
//! maximum-cycle-mean machinery analyses heterochronous *and*
//! hetero-width aelite configurations.
//!
//! The expansion follows Sriram & Bhattacharyya: for an edge with rates
//! `(p, q)` and `d` initial tokens, produced token `n` (global numbering,
//! offset by `d`) is consumed by firing `⌊(d+n)/q⌋` of the consumer; the
//! HSDF edge goes to that firing's copy with one initial token per full
//! repetition-vector revolution.

use crate::graph::{ActorId, HsdfGraph};
use core::fmt;

/// An actor index within an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SdfActorId(usize);

impl fmt::Display for SdfActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sdf#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct SdfActor {
    name: String,
    exec_time: f64,
}

#[derive(Debug, Clone, Copy)]
struct SdfEdge {
    from: usize,
    to: usize,
    produce: u32,
    consume: u32,
    tokens: u32,
}

/// A multirate SDF graph.
///
/// # Examples
///
/// A 2:1 width converter between a narrow producer and a wide consumer:
///
/// ```
/// use aelite_dataflow::sdf::SdfGraph;
///
/// let mut g = SdfGraph::new();
/// let narrow = g.add_actor("narrow NI", 2.0); // fires per narrow flit
/// let conv = g.add_actor("2:1 converter", 1.0);
/// let wide = g.add_actor("wide router", 3.0); // fires per wide flit
/// g.add_channel(narrow, 1, conv, 2, 4); // conv consumes 2 narrow flits
/// g.add_channel(conv, 1, wide, 1, 2);
/// // Repetition vector: narrow fires twice per converter/wide firing.
/// assert_eq!(g.repetition_vector(), vec![2, 1, 1]);
/// let hsdf = g.expand();
/// assert!(hsdf.maximum_cycle_mean().unwrap().is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SdfGraph {
    actors: Vec<SdfActor>,
    edges: Vec<SdfEdge>,
}

impl SdfGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        SdfGraph::default()
    }

    /// Adds an actor with a per-firing execution time.
    ///
    /// # Panics
    ///
    /// Panics if `exec_time` is negative or not finite.
    pub fn add_actor(&mut self, name: impl Into<String>, exec_time: f64) -> SdfActorId {
        assert!(
            exec_time.is_finite() && exec_time >= 0.0,
            "execution time must be finite and non-negative"
        );
        let id = SdfActorId(self.actors.len());
        self.actors.push(SdfActor {
            name: name.into(),
            exec_time,
        });
        id
    }

    /// Adds an edge: `from` produces `produce` tokens per firing, `to`
    /// consumes `consume` per firing, with `tokens` initially present.
    ///
    /// # Panics
    ///
    /// Panics on zero rates or unknown actors.
    pub fn add_edge(
        &mut self,
        from: SdfActorId,
        produce: u32,
        to: SdfActorId,
        consume: u32,
        tokens: u32,
    ) {
        assert!(produce > 0 && consume > 0, "rates must be non-zero");
        assert!(from.0 < self.actors.len(), "unknown {from}");
        assert!(to.0 < self.actors.len(), "unknown {to}");
        self.edges.push(SdfEdge {
            from: from.0,
            to: to.0,
            produce,
            consume,
            tokens,
        });
    }

    /// Adds a bounded channel: a data edge plus the reverse space edge
    /// holding `capacity` tokens (counted in the *data* edge's tokens, so
    /// capacity is expressed in transported items).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than either rate (the channel
    /// could never fire its endpoint).
    pub fn add_channel(
        &mut self,
        from: SdfActorId,
        produce: u32,
        to: SdfActorId,
        consume: u32,
        capacity: u32,
    ) {
        assert!(
            capacity >= produce.max(consume),
            "capacity {capacity} below rate {}",
            produce.max(consume)
        );
        self.add_edge(from, produce, to, consume, 0);
        // Space flows the other way: consuming q data frees q space.
        self.add_edge(to, consume, from, produce, capacity);
    }

    /// The repetition vector: the smallest positive firing counts that
    /// return every edge to its initial token count.
    ///
    /// # Panics
    ///
    /// Panics if the graph is rate-inconsistent (no finite repetition
    /// vector exists) or has disconnected actors with no edges (their
    /// entry defaults to 1).
    #[must_use]
    pub fn repetition_vector(&self) -> Vec<u64> {
        let n = self.actors.len();
        // Rational solve by propagation: r[to] = r[from] * p / q.
        let mut num = vec![0u64; n];
        let mut den = vec![1u64; n];
        for start in 0..n {
            if num[start] != 0 {
                continue;
            }
            num[start] = 1;
            den[start] = 1;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for e in &self.edges {
                    let (a, b, p, q) = (e.from, e.to, e.produce, e.consume);
                    for (x, y, px, qy) in [(a, b, p, q), (b, a, q, p)] {
                        if x == v {
                            let cand_num = num[v] * u64::from(px);
                            let cand_den = den[v] * u64::from(qy);
                            let g = gcd(cand_num, cand_den);
                            let (cn, cd) = (cand_num / g, cand_den / g);
                            if num[y] == 0 {
                                num[y] = cn;
                                den[y] = cd;
                                stack.push(y);
                            } else {
                                assert!(
                                    num[y] * cd == cn * den[y],
                                    "rate-inconsistent SDF graph at actor {y}"
                                );
                            }
                        }
                    }
                }
            }
        }
        // Scale to integers: multiply by lcm of denominators.
        let l = den.iter().fold(1u64, |acc, &d| lcm(acc, d));
        let reps: Vec<u64> = num
            .iter()
            .zip(&den)
            .map(|(&n_, &d_)| n_ * (l / d_))
            .collect();
        // Normalise by the gcd of all entries.
        let g = reps.iter().fold(0u64, |acc, &r| gcd(acc, r));
        reps.iter()
            .map(|&r| r.checked_div(g).unwrap_or(1))
            .collect()
    }

    /// Expands the SDF graph into an equivalent HSDF graph with one actor
    /// copy per firing of the repetition vector.
    ///
    /// # Panics
    ///
    /// Panics if the graph is rate-inconsistent.
    #[must_use]
    pub fn expand(&self) -> HsdfGraph {
        let reps = self.repetition_vector();
        let mut hsdf = HsdfGraph::new();
        // Actor copies.
        let mut copies: Vec<Vec<ActorId>> = Vec::with_capacity(self.actors.len());
        for (a, actor) in self.actors.iter().enumerate() {
            let mut list = Vec::new();
            for i in 0..reps[a] {
                list.push(hsdf.add_actor(format!("{}#{i}", actor.name), actor.exec_time));
            }
            copies.push(list);
        }
        // Edges per produced token.
        for e in &self.edges {
            let ra = reps[e.from];
            let rb = reps[e.to];
            let (p, q, d) = (
                u64::from(e.produce),
                u64::from(e.consume),
                u64::from(e.tokens),
            );
            for i in 0..ra {
                for j in 0..p {
                    let n = i * p + j; // production order
                    let global = d + n;
                    let c = global / q; // consuming firing (global index)
                    let target = (c % rb) as usize;
                    let delay = u32::try_from(c / rb).expect("delay fits u32");
                    hsdf.add_edge(copies[e.from][i as usize], copies[e.to][target], delay);
                }
            }
        }
        hsdf
    }

    /// Throughput of `actor` in firings per time unit.
    ///
    /// Every copy in the HSDF expansion fires once per `MCM` time units
    /// in steady state, and `actor` has `reps[actor]` copies, so its rate
    /// is `reps[actor] / MCM`. Returns `None` for acyclic graphs and `0`
    /// for deadlocked ones.
    #[must_use]
    pub fn actor_throughput(&self, actor: SdfActorId) -> Option<f64> {
        let reps = self.repetition_vector();
        let mcm = self.expand().maximum_cycle_mean()?;
        if mcm.is_infinite() {
            return Some(0.0);
        }
        Some(reps[actor.0] as f64 / mcm)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_vector_of_rate_2_chain() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, 1, b, 2, 0);
        assert_eq!(g.repetition_vector(), vec![2, 1]);
    }

    #[test]
    fn repetition_vector_of_three_stage_conversion() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        let c = g.add_actor("c", 1.0);
        g.add_edge(a, 2, b, 3, 0);
        g.add_edge(b, 1, c, 2, 0);
        // a:3, b:2, c:1 balances 2*3=3*2 and 1*2=2*1.
        assert_eq!(g.repetition_vector(), vec![3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "rate-inconsistent")]
    fn inconsistent_rates_detected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_edge(a, 1, b, 2, 0);
        g.add_edge(b, 1, a, 1, 1); // forces r_a = r_b, contradiction
        let _ = g.repetition_vector();
    }

    #[test]
    fn homogeneous_sdf_expands_to_itself() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 3.0);
        let b = g.add_actor("b", 5.0);
        g.add_edge(a, 1, b, 1, 0);
        g.add_edge(b, 1, a, 1, 1);
        let h = g.expand();
        assert_eq!(h.actor_count(), 2);
        let mcm = h.maximum_cycle_mean().unwrap();
        assert!((mcm - 8.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn expansion_of_multirate_ring_matches_hand_computation() {
        // a (exec 2) produces 1, b (exec 3) consumes 2; feedback with 2
        // tokens. Repetitions: a=2, b=1. Cycle: a0,a1 then b0; the
        // iteration needs both a firings (2+2) and one b (3)... the MCM
        // of the expansion with the 2-token feedback loop:
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 2.0);
        let b = g.add_actor("b", 3.0);
        g.add_edge(a, 1, b, 2, 0);
        g.add_edge(b, 2, a, 1, 2);
        let h = g.expand();
        // Copies: a0, a1, b0. Data: a0->b0 (token0, delay 0), a1->b0
        // (token1, delay 0). Space: b0 produces 2 with d=2: tokens 2,3 ->
        // consumed by a-firings 2 (=a0, delay1) and 3 (=a1, delay1).
        let mcm = h.maximum_cycle_mean().unwrap();
        // Worst cycle: a0 -> b0 -> a0 with 1 delay: (2+3)/1 = 5.
        assert!((mcm - 5.0).abs() < 1e-6, "{mcm}");
    }

    #[test]
    fn width_converter_limits_match_slowest_region() {
        // Narrow 32-bit region at 500 MHz feeding a 64-bit region at
        // 250 MHz through a 2:1 converter: both regions carry the same
        // payload rate, so the pipeline is balanced and the narrow NI
        // fires once per its own flit cycle (6 ns).
        let mut g = SdfGraph::new();
        let narrow = g.add_actor("narrow NI", 6.0); // 3 cycles @ 500 MHz
        let conv = g.add_actor("converter", 6.0);
        let wide = g.add_actor("wide router", 12.0); // 3 cycles @ 250 MHz
                                                     // Non-reentrant actors.
        g.add_edge(narrow, 1, narrow, 1, 1);
        g.add_edge(conv, 1, conv, 1, 1);
        g.add_edge(wide, 1, wide, 1, 1);
        g.add_channel(narrow, 1, conv, 2, 4);
        g.add_channel(conv, 1, wide, 1, 2);
        let reps = g.repetition_vector();
        assert_eq!(reps, vec![2, 1, 1]);
        let h = g.expand();
        let mcm = h.maximum_cycle_mean().unwrap();
        // One iteration = 2 narrow firings + 1 wide firing; the wide
        // region (12 ns per wide flit = 2 narrow flits) and the narrow
        // region (2 x 6 ns) are perfectly balanced: iteration = 12 ns,
        // i.e. the narrow actor's own 6 ns per firing... the binding
        // constraint is the wide actor's self-loop: 12 ns per iteration.
        assert!((mcm - 12.0).abs() < 1e-6, "{mcm}");

        // Halving the wide region's speed makes it the bottleneck.
        let mut slow = SdfGraph::new();
        let narrow = slow.add_actor("narrow NI", 6.0);
        let conv = slow.add_actor("converter", 6.0);
        let wide = slow.add_actor("wide router", 24.0);
        slow.add_edge(narrow, 1, narrow, 1, 1);
        slow.add_edge(conv, 1, conv, 1, 1);
        slow.add_edge(wide, 1, wide, 1, 1);
        slow.add_channel(narrow, 1, conv, 2, 4);
        slow.add_channel(conv, 1, wide, 1, 2);
        let mcm_slow = slow.expand().maximum_cycle_mean().unwrap();
        assert!((mcm_slow - 24.0).abs() < 1e-6, "{mcm_slow}");
    }

    #[test]
    fn actor_throughput_scales_with_repetitions() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 2.0);
        let b = g.add_actor("b", 4.0);
        g.add_edge(a, 1, a, 1, 1);
        g.add_edge(b, 1, b, 1, 1);
        g.add_channel(a, 1, b, 2, 4);
        // b is the bottleneck: one b firing per 4 time units; a fires
        // twice as often.
        let tb = g.actor_throughput(b).unwrap();
        let ta = g.actor_throughput(a).unwrap();
        assert!((tb - 0.25).abs() < 1e-6, "{tb}");
        assert!((ta - 0.5).abs() < 1e-6, "{ta}");
    }

    #[test]
    fn channel_capacity_validated() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_channel(a, 1, b, 2, 2); // capacity == consume rate: legal
        assert_eq!(g.repetition_vector(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "below rate")]
    fn undersized_channel_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a", 1.0);
        let b = g.add_actor("b", 1.0);
        g.add_channel(a, 1, b, 3, 2);
    }
}
