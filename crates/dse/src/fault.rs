//! The fault scenario: deterministic robustness verdict of every
//! Pareto-front design point, folded into `DSE_REPORT.json`.
//!
//! Unlike [`churn`](crate::churn) — whose sustained ops/sec is wall
//! clock and therefore stays out of the byte-reproducible report — every
//! number here is a pure function of the point's coordinates: the
//! scenario (a merged churn + fault trace, [`FaultScenario::merge`]) is
//! seeded from the point, replayed through the [`FaultEngine`], and the
//! resulting admission and displacement counts are committed to the
//! report and gated by `dse_sweep --check`.

use crate::grid::DesignPoint;
use crate::report::DseReport;
use aelite_alloc::Allocation;
use aelite_online::FaultEngine;
use aelite_spec::churn::{churn_trace, ChurnOp, ChurnParams};
use aelite_spec::fault::{fault_trace, FaultParams, FaultScenario, ScenarioOp};
use aelite_spec::generate::try_random_workload;
use core::fmt;

/// Churn events drawn per point's fault scenario.
pub const FAULT_CHURN_EVENTS: u32 = 200;
/// Fault events (failures, repairs, transient glitches) drawn per point.
pub const FAULT_EVENTS: u32 = 30;

/// The deterministic fault verdict of one design point: admission and
/// displacement counts only, no wall-clock rates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScenarioPoint {
    /// The point's stable id.
    pub id: String,
    /// Connections in the point's workload pool.
    pub connections: u32,
    /// Connections admitted when populating from empty through the
    /// engine (hardest-first order, deterministic).
    pub admitted: u32,
    /// Merged scenario events replayed.
    pub events: u32,
    /// Link failures applied (persistent, repeats not counted).
    pub link_downs: u64,
    /// Router failures applied.
    pub router_downs: u64,
    /// Transient glitches drawn (sub-threshold and escalated).
    pub glitches: u64,
    /// Glitches at or past the persistence threshold — the only ones
    /// allowed to displace grants.
    pub escalated: u64,
    /// Grants displaced by enforced faults over the whole scenario.
    pub affected: u64,
    /// Displaced grants that kept service (rerouted make-before-break
    /// or break-then-make).
    pub survived: u64,
    /// Displaced grants dropped with a structured refusal.
    pub dropped: u64,
    /// Dropped grants re-homed by later repairs.
    pub restored: u64,
    /// Admissions refused because of the fault mask.
    pub refused_link_down: u64,
}

impl fmt::Display for FaultScenarioPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>6} {:>8} {:>7} {:>8} {:>9} {:>8} {:>8} {:>8}",
            self.id,
            self.connections,
            self.admitted,
            self.events,
            self.glitches,
            self.escalated,
            self.affected,
            self.survived,
            self.dropped,
        )
    }
}

/// The header line matching [`FaultScenarioPoint`]'s `Display` columns.
#[must_use]
pub fn fault_table_header() -> String {
    format!(
        "{:<28} {:>6} {:>8} {:>7} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "pareto point",
        "conns",
        "admitted",
        "events",
        "glitches",
        "escalated",
        "affected",
        "survived",
        "dropped"
    )
}

/// Replays one design point through a seeded merged churn + fault
/// scenario and returns its deterministic robustness counts.
///
/// The platform is populated from empty through the engine itself
/// (refusals are fine — the admitted set is what the scenario then
/// stresses), the merged trace replayed with the scenario clock (so
/// transient glitches self-expire), and the clock finally run past the
/// last pending glitch so the end state is glitch-free.
///
/// # Panics
///
/// Panics if the point's workload can no longer be drawn (callers pass
/// points from a checked report).
#[must_use]
pub fn fault_point(point: &DesignPoint) -> FaultScenarioPoint {
    let spec = try_random_workload(
        point.topology(),
        point.config(),
        point.workload_params(),
        point.seed(),
    )
    .unwrap_or_else(|e| panic!("{}: workload no longer draws: {e}", point.id()));

    let mut alloc = Allocation::empty_for(&spec);
    let mut engine = FaultEngine::new(&spec);
    let mut admitted = 0u32;
    for c in spec.connections() {
        if engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Open(c.id))) {
            admitted += 1;
        }
    }

    let churn = churn_trace(
        &spec,
        &ChurnParams::steady(FAULT_CHURN_EVENTS),
        point.seed(),
    );
    let faults = fault_trace(
        spec.topology(),
        &FaultParams {
            rate_per_sec: 1.0e5,
            ..FaultParams::sparse(FAULT_EVENTS)
        },
        point.seed(),
    );
    let scenario = FaultScenario::merge(&churn, &faults);
    for e in &scenario.events {
        engine.apply_event(&spec, &mut alloc, e);
    }
    let end_ns = scenario.events.last().map_or(0, |e| e.at_ns);
    engine.advance_to(&spec, &mut alloc, end_ns.saturating_add(1_000_000));

    let s = *engine.stats();
    FaultScenarioPoint {
        id: point.id(),
        connections: spec.connections().len() as u32,
        admitted,
        events: scenario.len() as u32,
        link_downs: s.link_downs,
        router_downs: s.router_downs,
        glitches: s.glitches,
        escalated: s.escalated,
        affected: s.affected,
        survived: s.survived(),
        dropped: s.dropped,
        restored: s.restored,
        refused_link_down: engine.engine().stats().refused_link_down,
    }
}

/// Replays every point of `report`'s Pareto front (see [`fault_point`]);
/// returns one verdict row per point, in front order.
///
/// # Panics
///
/// Panics if the report's front is empty (a gated report never is).
#[must_use]
pub fn fault_front(report: &DseReport) -> Vec<FaultScenarioPoint> {
    assert!(
        !report.pareto.is_empty(),
        "cannot run the fault scenario on an empty Pareto front"
    );
    report
        .pareto
        .iter()
        .map(|&i| fault_point(&report.points[i].point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;
    use crate::grid::{DseGrid, MeshDim, TrafficMix};

    fn tiny_grid() -> DseGrid {
        DseGrid {
            label: "tiny".into(),
            meshes: vec![MeshDim::new(2, 2, 1), MeshDim::new(2, 2, 2)],
            slot_table_sizes: vec![32],
            link_pipeline_depths: vec![0, 1],
            mixes: vec![TrafficMix::Light],
        }
    }

    #[test]
    fn tiny_front_fault_counts_close_and_are_deterministic() {
        let report = run_sweep(&tiny_grid(), 2);
        let a = fault_front(&report);
        let b = fault_front(&report);
        assert_eq!(a, b, "fault scenario counts must be pure per point");
        assert_eq!(a.len(), report.pareto.len());
        for row in &a {
            assert_eq!(
                row.survived + row.dropped,
                row.affected,
                "{}: recovery accounting does not close",
                row.id
            );
            assert!(row.admitted > 0, "{}: nothing admitted", row.id);
            assert!(row.events > 0);
            assert!(row.escalated <= row.glitches);
            assert!(!row.to_string().is_empty());
        }
        assert!(fault_table_header().contains("escalated"));
    }
}
