//! Pareto-front extraction for the sweep collector.
//!
//! The headline trade-off of the paper's evaluation is silicon cost
//! against guaranteed service: a design point earns its place only if no
//! other point is at least as cheap *and* guarantees at least as much
//! throughput (strictly better in one of the two). This module extracts
//! that front with a plain O(n²) dominance scan — sweeps are hundreds of
//! points, not millions, and the simple scan keeps tie-breaking exact
//! and obviously deterministic.

/// One candidate for the front: a cost to minimise and a value to
/// maximise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The objective to minimise (e.g. silicon area in mm²).
    pub cost: f64,
    /// The objective to maximise (e.g. guaranteed throughput in GB/s).
    pub value: f64,
}

/// Whether `a` Pareto-dominates `b`: no worse on both objectives and
/// strictly better on at least one.
#[must_use]
pub fn dominates(a: Candidate, b: Candidate) -> bool {
    a.cost <= b.cost && a.value >= b.value && (a.cost < b.cost || a.value > b.value)
}

/// Indices of the non-dominated candidates, in input order.
///
/// Exact duplicates (identical cost *and* value) do not dominate each
/// other, so tied points all stay on the front — a sweep reporting two
/// distinct configurations with identical metrics should show both.
///
/// # Examples
///
/// ```
/// use aelite_dse::pareto::{pareto_front, Candidate};
///
/// let c = |cost, value| Candidate { cost, value };
/// // (1, 5) and (2, 9) trade off; (3, 4) is dominated by both.
/// let front = pareto_front(&[c(1.0, 5.0), c(3.0, 4.0), c(2.0, 9.0)]);
/// assert_eq!(front, vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_front(candidates: &[Candidate]) -> Vec<usize> {
    (0..candidates.len())
        .filter(|&i| {
            !candidates
                .iter()
                .enumerate()
                .any(|(j, &other)| j != i && dominates(other, candidates[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(cost: f64, value: f64) -> Candidate {
        Candidate { cost, value }
    }

    #[test]
    fn empty_set_has_empty_front() {
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn single_point_is_its_own_front() {
        assert_eq!(pareto_front(&[c(3.0, 1.0)]), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        // (2, 2) loses to (1, 3) on both axes; (1, 3) and (4, 9) trade off.
        let front = pareto_front(&[c(1.0, 3.0), c(2.0, 2.0), c(4.0, 9.0)]);
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn strict_dominance_requires_one_strict_inequality() {
        // Same cost, higher value dominates; same value, lower cost
        // dominates.
        assert!(dominates(c(1.0, 5.0), c(1.0, 4.0)));
        assert!(dominates(c(1.0, 5.0), c(2.0, 5.0)));
        assert!(
            !dominates(c(1.0, 5.0), c(1.0, 5.0)),
            "equal never dominates"
        );
    }

    #[test]
    fn tied_duplicates_all_stay_on_the_front() {
        let front = pareto_front(&[c(1.0, 5.0), c(1.0, 5.0), c(9.0, 1.0)]);
        assert_eq!(
            front,
            vec![0, 1],
            "duplicates keep each other, both beat nothing"
        );
    }

    #[test]
    fn partial_ties_on_one_axis() {
        // (1, 5) vs (1, 7): same cost, second wins. (0.5, 5) incomparable
        // to (1, 7) (cheaper but lower value).
        let front = pareto_front(&[c(1.0, 5.0), c(1.0, 7.0), c(0.5, 5.0)]);
        assert_eq!(front, vec![1, 2]);
    }

    #[test]
    fn chain_of_dominance_collapses_to_the_best() {
        let front = pareto_front(&[c(4.0, 1.0), c(3.0, 2.0), c(2.0, 3.0), c(1.0, 4.0)]);
        assert_eq!(front, vec![3]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let pts: Vec<Candidate> = (0..6).map(|i| c(f64::from(i), f64::from(i))).collect();
        assert_eq!(pareto_front(&pts), vec![0, 1, 2, 3, 4, 5]);
    }
}
