//! The churn scenario: sustainable online-reconfiguration rate of every
//! Pareto-front design point.
//!
//! Area and guaranteed throughput say what a platform *costs* and
//! *carries*; for the heavy-traffic regime the ROADMAP targets, a third
//! axis matters: how fast the platform can **turn connections over** at
//! run time. This module replays each point of a report's Pareto front
//! through the online [`ChurnEngine`] under a seeded Poisson
//! open/close/use-case-switch trace ([`aelite_spec::churn`]) and
//! reports, per point, the *deterministic* admission outcome (ops
//! requested, setups admitted/rejected) alongside the *measured*
//! sustained churn rate in setup+teardown operations per second.
//!
//! Like [`validate`](crate::validate), the scenario is a front replay
//! (`dse_sweep --churn`) rather than part of `DSE_REPORT.json`: the
//! admission counts are pure functions of the point's coordinates, but
//! a wall-clock rate has no place in a byte-reproducible report.

use crate::engine::admit_incrementally;
use crate::grid::DesignPoint;
use crate::report::DseReport;
use aelite_alloc::Allocator;
use aelite_online::ChurnEngine;
use aelite_spec::churn::{churn_trace, ChurnParams};
use aelite_spec::generate::try_random_workload;
use core::fmt;
use std::time::Instant;

/// Events drawn per point: enough churn to cycle a large platform's
/// pool several times while keeping a full-front replay in CI budget.
pub const CHURN_EVENTS_PER_POINT: u32 = 4_000;

/// The churn verdict of one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// The point's stable id.
    pub id: String,
    /// Connections in the point's workload pool.
    pub connections: u32,
    /// Individual setup + teardown operations requested by the trace.
    pub ops_requested: u64,
    /// Setups admitted (deterministic per point).
    pub setups_admitted: u64,
    /// Setup requests the platform rejected (deterministic per point).
    pub setups_rejected: u64,
    /// Use-case switches completed.
    pub switches: u64,
    /// Fraction of setup requests admitted.
    pub admission_rate: f64,
    /// Measured sustained churn throughput, setup+teardown ops per
    /// second (wall clock; machine-dependent, not committed anywhere).
    pub ops_per_sec: f64,
}

impl fmt::Display for ChurnPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>6} {:>8} {:>9} {:>9} {:>9} {:>10.1}% {:>11.2}M",
            self.id,
            self.connections,
            self.ops_requested,
            self.setups_admitted,
            self.setups_rejected,
            self.switches,
            100.0 * self.admission_rate,
            self.ops_per_sec / 1.0e6,
        )
    }
}

/// The header line matching [`ChurnPoint`]'s `Display` columns.
#[must_use]
pub fn churn_table_header() -> String {
    format!(
        "{:<28} {:>6} {:>8} {:>9} {:>9} {:>9} {:>11} {:>12}",
        "pareto point", "conns", "ops", "admitted", "rejected", "switches", "admission", "Mops/s"
    )
}

/// Replays one design point's workload under a churn trace and returns
/// its admission outcome and sustained rate.
///
/// The starting allocation reproduces the sweep engine's (batch flow,
/// incremental-admission fallback), the whole pool is then torn down and
/// the trace drives the platform from empty — so the scenario covers
/// ramp-up, steady-state occupancy and use-case switches.
///
/// # Panics
///
/// Panics if the point's workload can no longer be drawn (callers pass
/// points from a checked report).
#[must_use]
pub fn churn_point(point: &DesignPoint, events: u32) -> ChurnPoint {
    let spec = try_random_workload(
        point.topology(),
        point.config(),
        point.workload_params(),
        point.seed(),
    )
    .unwrap_or_else(|e| panic!("{}: workload no longer draws: {e}", point.id()));

    // Reproduce the sweep's allocation, then drain it through the O(Δ)
    // teardown kernel: the trace starts from an empty, warmed engine.
    let allocator = Allocator::new();
    let mut engine = ChurnEngine::new(&spec);
    let mut alloc = match allocator.allocate(&spec) {
        Ok(alloc) => alloc,
        Err(_) => {
            admit_incrementally(
                &allocator,
                &spec,
                &mut aelite_alloc::RouteCache::new(spec.topology(), allocator.max_paths),
            )
            .0
        }
    };
    let pool: Vec<_> = alloc.grants().map(|g| g.conn).collect();
    for c in pool {
        engine.close(&mut alloc, c);
    }

    let trace = churn_trace(&spec, &ChurnParams::steady(events), point.seed());
    let before = *engine.stats();
    let t0 = Instant::now();
    for e in &trace.events {
        engine.apply(&spec, &mut alloc, &e.op);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = *engine.stats();

    let setups_admitted = stats.setups - before.setups;
    let setups_rejected = stats.refused_opens + stats.refused_switches
        - before.refused_opens
        - before.refused_switches;
    let done = stats.ops() - before.ops();
    ChurnPoint {
        id: point.id(),
        connections: spec.connections().len() as u32,
        ops_requested: trace.ops(),
        setups_admitted,
        setups_rejected,
        switches: stats.switches - before.switches,
        admission_rate: setups_admitted as f64 / (setups_admitted + setups_rejected).max(1) as f64,
        ops_per_sec: done as f64 / elapsed.max(1e-9),
    }
}

/// Replays every point of `report`'s Pareto front (see [`churn_point`]);
/// returns one verdict row per point, in front order.
///
/// # Panics
///
/// Panics if the report's front is empty (a gated report never is).
#[must_use]
pub fn churn_front(report: &DseReport, events: u32) -> Vec<ChurnPoint> {
    assert!(
        !report.pareto.is_empty(),
        "cannot churn an empty Pareto front"
    );
    report
        .pareto
        .iter()
        .map(|&i| churn_point(&report.points[i].point, events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;
    use crate::grid::{DseGrid, MeshDim, TrafficMix};

    fn tiny_grid() -> DseGrid {
        DseGrid {
            label: "tiny".into(),
            meshes: vec![MeshDim::new(2, 2, 1), MeshDim::new(2, 2, 2)],
            slot_table_sizes: vec![32],
            link_pipeline_depths: vec![0, 1],
            mixes: vec![TrafficMix::Light],
        }
    }

    #[test]
    fn tiny_front_churns_with_high_admission() {
        let report = run_sweep(&tiny_grid(), 2);
        let rows = churn_front(&report, 400);
        assert_eq!(rows.len(), report.pareto.len());
        for row in &rows {
            assert!(row.ops_requested > 0);
            assert!(row.setups_admitted > 0);
            assert!(
                row.admission_rate > 0.9,
                "{}: admission {}",
                row.id,
                row.admission_rate
            );
            assert!(row.ops_per_sec > 0.0);
            assert!(!row.to_string().is_empty());
        }
        assert!(churn_table_header().contains("Mops/s"));
    }

    #[test]
    fn admission_outcome_is_deterministic() {
        let report = run_sweep(&tiny_grid(), 1);
        let a = churn_front(&report, 300);
        let b = churn_front(&report, 300);
        // Everything except the wall-clock rate is reproducible.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.ops_requested, y.ops_requested);
            assert_eq!(x.setups_admitted, y.setups_admitted);
            assert_eq!(x.setups_rejected, y.setups_rejected);
            assert_eq!(x.switches, y.switches);
        }
    }
}
