//! The sweep collector: aggregates, the Pareto front, `DSE_REPORT.json`
//! serialization and the human-readable summary tables.
//!
//! Serialization is hand-rolled (the workspace builds offline, without
//! serde) and **stable**: points appear in grid-enumeration order, keys
//! in a fixed order, and every float with a fixed precision — so two
//! sweeps of the same grid produce byte-identical reports whatever the
//! worker count, which CI and `tests/dse_determinism.rs` rely on.

use crate::engine::{PointOutcome, PointResult};
use crate::fault::{fault_front, FaultScenarioPoint};
use crate::grid::PAPER_POINT_ID;
use crate::pareto::{pareto_front, Candidate};
use std::fmt::Write as _;

/// The schema tag stamped into every report. Schema 2 folds the
/// deterministic fault-scenario counts of every Pareto-front point into
/// the report (`fault_scenarios`); wall-clock rates stay out.
pub const REPORT_SCHEMA: &str = "aelite-dse-report/2";

/// A completed sweep: every point's result plus the derived fronts and
/// aggregates.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// The grid label (`full`, `reduced`, …).
    pub grid: String,
    /// Per-point results in grid-enumeration order.
    pub points: Vec<PointResult>,
    /// Indices (into [`points`](Self::points)) of the area-vs-guaranteed-
    /// throughput Pareto front, computed over fully-allocated points.
    pub pareto: Vec<usize>,
    /// Deterministic fault-scenario verdicts of the front, in front
    /// order (see [`crate::fault`]); filled by
    /// [`attach_fault_scenarios`](Self::attach_fault_scenarios).
    pub fault: Vec<FaultScenarioPoint>,
}

impl DseReport {
    /// Collects `points` into a report, extracting the Pareto front
    /// (minimise `area_mm2`, maximise `guaranteed_throughput_gbytes`)
    /// over the fully-successful points.
    #[must_use]
    pub fn new(grid: &str, points: Vec<PointResult>) -> Self {
        // Dominance is judged among Full points only — a partially
        // allocated platform does not deliver its nominal throughput —
        // but indices refer into the complete point list.
        let full_idx: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].outcome == PointOutcome::Full)
            .collect();
        let candidates: Vec<Candidate> = full_idx
            .iter()
            .map(|&i| Candidate {
                cost: points[i].area_mm2,
                value: points[i].guaranteed_throughput_gbytes,
            })
            .collect();
        let pareto = pareto_front(&candidates)
            .into_iter()
            .map(|k| full_idx[k])
            .collect();
        DseReport {
            grid: grid.to_string(),
            points,
            pareto,
            fault: Vec::new(),
        }
    }

    /// Runs the seeded fault scenario on every Pareto-front point and
    /// stores the deterministic verdicts (see [`crate::fault`]) for
    /// serialization. Idempotent in outcome: the counts are pure
    /// functions of the front's coordinates.
    pub fn attach_fault_scenarios(&mut self) {
        self.fault = fault_front(self);
    }

    /// Count of points with the given outcome.
    #[must_use]
    pub fn count(&self, outcome: PointOutcome) -> usize {
        self.points.iter().filter(|p| p.outcome == outcome).count()
    }

    /// Connection-weighted success rate over the whole sweep.
    #[must_use]
    pub fn overall_connection_success_rate(&self) -> f64 {
        let requested: u64 = self
            .points
            .iter()
            .map(|p| u64::from(p.connections_requested))
            .sum();
        let granted: u64 = self
            .points
            .iter()
            .map(|p| u64::from(p.connections_granted))
            .sum();
        if requested == 0 {
            0.0
        } else {
            granted as f64 / requested as f64
        }
    }

    /// The paper-platform point, if the grid contained it.
    #[must_use]
    pub fn paper_point(&self) -> Option<&PointResult> {
        self.points.iter().find(|p| p.point.is_paper_platform())
    }

    /// Serializes the report; see the module docs for the stability
    /// contract. The output always ends with a newline.
    ///
    /// # Panics
    ///
    /// Panics only on formatter failure (infallible for `String`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n");
        writeln!(j, "  \"schema\": \"{REPORT_SCHEMA}\",").unwrap();
        j.push_str("  \"generated_by\": \"examples/dse_sweep.rs\",\n");
        j.push_str(
            "  \"note\": \"one point per (mesh, slot-table size, link pipeline depth, traffic \
             mix) coordinate; outcome 'full' = every drawn connection got a contention-free \
             grant, 'partial' = hardest-first admission kept a subset, 'workload_infeasible' \
             = the profile's draw budgets overflow the platform; the Pareto front minimises \
             area_mm2 and maximises guaranteed_throughput_gbytes over 'full' points; \
             fault_scenarios replays each front point through a seeded merged churn + fault \
             trace — every count is deterministic, wall-clock rates stay out\",\n",
        );
        writeln!(j, "  \"grid\": \"{}\",", self.grid).unwrap();
        writeln!(j, "  \"point_count\": {},", self.points.len()).unwrap();
        writeln!(
            j,
            "  \"full_success_points\": {},",
            self.count(PointOutcome::Full)
        )
        .unwrap();
        writeln!(
            j,
            "  \"partial_points\": {},",
            self.count(PointOutcome::Partial)
        )
        .unwrap();
        writeln!(
            j,
            "  \"workload_infeasible_points\": {},",
            self.count(PointOutcome::WorkloadInfeasible)
        )
        .unwrap();
        writeln!(
            j,
            "  \"overall_connection_success_rate\": {:.4},",
            self.overall_connection_success_rate()
        )
        .unwrap();
        write!(j, "  \"pareto_front\": [").unwrap();
        for (n, &i) in self.pareto.iter().enumerate() {
            let sep = if n == 0 { "" } else { ", " };
            write!(j, "{sep}\"{}\"", self.points[i].point.id()).unwrap();
        }
        j.push_str("],\n");
        j.push_str("  \"fault_scenarios\": [\n");
        for (i, f) in self.fault.iter().enumerate() {
            j.push_str("    {\n");
            writeln!(j, "      \"id\": \"{}\",", f.id).unwrap();
            writeln!(j, "      \"connections\": {},", f.connections).unwrap();
            writeln!(j, "      \"admitted\": {},", f.admitted).unwrap();
            writeln!(j, "      \"scenario_events\": {},", f.events).unwrap();
            writeln!(j, "      \"link_downs\": {},", f.link_downs).unwrap();
            writeln!(j, "      \"router_downs\": {},", f.router_downs).unwrap();
            writeln!(j, "      \"glitches\": {},", f.glitches).unwrap();
            writeln!(j, "      \"escalated\": {},", f.escalated).unwrap();
            writeln!(j, "      \"affected\": {},", f.affected).unwrap();
            writeln!(j, "      \"survived\": {},", f.survived).unwrap();
            writeln!(j, "      \"dropped\": {},", f.dropped).unwrap();
            writeln!(j, "      \"restored\": {},", f.restored).unwrap();
            writeln!(j, "      \"refused_link_down\": {}", f.refused_link_down).unwrap();
            write!(
                j,
                "    }}{}",
                if i + 1 < self.fault.len() {
                    ",\n"
                } else {
                    "\n"
                }
            )
            .unwrap();
        }
        j.push_str("  ],\n");
        j.push_str("  \"points\": [\n");
        let on_front: Vec<bool> = {
            let mut v = vec![false; self.points.len()];
            for &i in &self.pareto {
                v[i] = true;
            }
            v
        };
        for (i, p) in self.points.iter().enumerate() {
            j.push_str("    {\n");
            writeln!(j, "      \"id\": \"{}\",", p.point.id()).unwrap();
            writeln!(j, "      \"cols\": {},", p.point.mesh.cols).unwrap();
            writeln!(j, "      \"rows\": {},", p.point.mesh.rows).unwrap();
            writeln!(
                j,
                "      \"nis_per_router\": {},",
                p.point.mesh.nis_per_router
            )
            .unwrap();
            writeln!(j, "      \"slot_table_size\": {},", p.point.slot_table_size).unwrap();
            writeln!(
                j,
                "      \"link_pipeline_stages\": {},",
                p.point.link_pipeline_stages
            )
            .unwrap();
            writeln!(j, "      \"mix\": \"{}\",", p.point.mix.tag()).unwrap();
            writeln!(j, "      \"seed\": \"{:#018x}\",", p.seed).unwrap();
            writeln!(j, "      \"outcome\": \"{}\",", p.outcome.tag()).unwrap();
            writeln!(
                j,
                "      \"connections_requested\": {},",
                p.connections_requested
            )
            .unwrap();
            writeln!(
                j,
                "      \"connections_granted\": {},",
                p.connections_granted
            )
            .unwrap();
            writeln!(
                j,
                "      \"alloc_success_rate\": {:.3},",
                p.alloc_success_rate
            )
            .unwrap();
            writeln!(
                j,
                "      \"worst_case_flit_latency_ns\": {:.1},",
                p.worst_case_flit_latency_ns
            )
            .unwrap();
            writeln!(
                j,
                "      \"mean_loaded_utilisation\": {:.4},",
                p.mean_loaded_utilisation
            )
            .unwrap();
            writeln!(j, "      \"peak_utilisation\": {:.4},", p.peak_utilisation).unwrap();
            writeln!(
                j,
                "      \"guaranteed_throughput_gbytes\": {:.3},",
                p.guaranteed_throughput_gbytes
            )
            .unwrap();
            writeln!(
                j,
                "      \"dataflow_flit_rate_per_us\": {:.2},",
                p.dataflow_flit_rate_per_us
            )
            .unwrap();
            writeln!(j, "      \"area_mm2\": {:.4},", p.area_mm2).unwrap();
            writeln!(j, "      \"power_mw\": {:.2},", p.power_mw).unwrap();
            writeln!(j, "      \"on_pareto_front\": {}", on_front[i]).unwrap();
            write!(
                j,
                "    }}{}",
                if i + 1 < self.points.len() {
                    ",\n"
                } else {
                    "\n"
                }
            )
            .unwrap();
        }
        j.push_str("  ]\n}\n");
        j
    }

    /// A short human-readable sweep summary (counts, success rate, the
    /// paper point's verdict when present).
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "sweep `{}`: {} points | full {} | partial {} | workload-infeasible {}",
            self.grid,
            self.points.len(),
            self.count(PointOutcome::Full),
            self.count(PointOutcome::Partial),
            self.count(PointOutcome::WorkloadInfeasible),
        )
        .unwrap();
        writeln!(
            s,
            "connection-weighted success rate: {:.2}%",
            100.0 * self.overall_connection_success_rate()
        )
        .unwrap();
        if let Some(p) = self.paper_point() {
            writeln!(
                s,
                "paper platform ({PAPER_POINT_ID}): {}/{} connections, worst flit bound {:.1} ns",
                p.connections_granted, p.connections_requested, p.worst_case_flit_latency_ns
            )
            .unwrap();
        }
        s
    }

    /// The area-vs-guaranteed-throughput Pareto front as a plain-text
    /// table, cheapest first.
    #[must_use]
    pub fn pareto_table(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "{:<28} {:>9} {:>10} {:>12} {:>9}",
            "pareto point", "area mm2", "GB/s gtd", "worst ns", "conns"
        )
        .unwrap();
        let mut rows: Vec<&PointResult> = self.pareto.iter().map(|&i| &self.points[i]).collect();
        rows.sort_by(|a, b| {
            a.area_mm2
                .partial_cmp(&b.area_mm2)
                .expect("areas are finite")
                .then_with(|| a.point.id().cmp(&b.point.id()))
        });
        for p in rows {
            writeln!(
                s,
                "{:<28} {:>9.4} {:>10.3} {:>12.1} {:>9}",
                p.point.id(),
                p.area_mm2,
                p.guaranteed_throughput_gbytes,
                p.worst_case_flit_latency_ns,
                p.connections_granted,
            )
            .unwrap();
        }
        s
    }

    /// Asserts the report gates CI relies on:
    ///
    /// * the sweep is non-empty and internally consistent (success rates
    ///   match the grant counts, Pareto indices point at `full` points);
    /// * when the grid contains the paper platform, it allocates 100% of
    ///   its connections;
    /// * when any point fully allocates, the Pareto front is non-empty.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when a gate fails.
    pub fn assert_gates(&self) {
        assert!(!self.points.is_empty(), "empty sweep");
        for p in &self.points {
            let expect = if p.connections_requested == 0 {
                0.0
            } else {
                f64::from(p.connections_granted) / f64::from(p.connections_requested)
            };
            assert!(
                (p.alloc_success_rate - expect).abs() < 1e-12,
                "{}: success rate {} inconsistent with {}/{}",
                p.point.id(),
                p.alloc_success_rate,
                p.connections_granted,
                p.connections_requested
            );
            if p.outcome == PointOutcome::Full {
                assert_eq!(
                    p.connections_granted,
                    p.connections_requested,
                    "{}: full outcome with missing grants",
                    p.point.id()
                );
            }
        }
        for &i in &self.pareto {
            assert_eq!(
                self.points[i].outcome,
                PointOutcome::Full,
                "Pareto front contains a non-full point"
            );
        }
        if let Some(p) = self.paper_point() {
            assert_eq!(
                p.outcome,
                PointOutcome::Full,
                "the paper platform must allocate 100% of its connections \
                 (got {}/{})",
                p.connections_granted,
                p.connections_requested
            );
        }
        if self.count(PointOutcome::Full) > 0 {
            assert!(
                !self.pareto.is_empty(),
                "full points but empty Pareto front"
            );
        }
        if !self.fault.is_empty() {
            assert_eq!(
                self.fault.len(),
                self.pareto.len(),
                "fault scenarios do not cover the Pareto front"
            );
            for (f, &i) in self.fault.iter().zip(&self.pareto) {
                assert_eq!(
                    f.id,
                    self.points[i].point.id(),
                    "fault scenario out of front order"
                );
                assert_eq!(
                    f.survived + f.dropped,
                    f.affected,
                    "{}: fault recovery accounting does not close",
                    f.id
                );
                assert!(
                    f.escalated <= f.glitches,
                    "{}: more escalations than glitches",
                    f.id
                );
            }
        }
    }
}

/// Checks a serialized report (e.g. the committed `DSE_REPORT.json`)
/// against the schema and gates without re-running the sweep: schema
/// tag, a non-empty Pareto front, and the paper platform allocating
/// 100% of its connections.
///
/// # Errors
///
/// Returns a description of the first failed gate.
pub fn check_report_text(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{REPORT_SCHEMA}\"")) {
        return Err(format!("missing schema tag {REPORT_SCHEMA:?}"));
    }
    let Some(pareto_at) = json.find("\"pareto_front\": [") else {
        return Err("missing pareto_front".into());
    };
    let after = &json[pareto_at + "\"pareto_front\": [".len()..];
    if after.trim_start().starts_with(']') {
        return Err("empty pareto_front".into());
    }
    let Some(fault_at) = json.find("\"fault_scenarios\": [") else {
        return Err("missing fault_scenarios (schema 2 folds the fault verdicts in)".into());
    };
    let after = &json[fault_at + "\"fault_scenarios\": [".len()..];
    if after.trim_start().starts_with(']') {
        return Err("empty fault_scenarios — the front's fault verdicts must be committed".into());
    }
    let Some(paper_at) = json.find(&format!("\"id\": \"{PAPER_POINT_ID}\"")) else {
        return Err(format!("missing paper platform point {PAPER_POINT_ID}"));
    };
    let tail = &json[paper_at..];
    let scope = &tail[..tail.find('}').unwrap_or(tail.len())];
    let Some(rate_at) = scope.find("\"alloc_success_rate\": ") else {
        return Err("paper point has no alloc_success_rate".into());
    };
    let rate_txt: String = scope[rate_at + "\"alloc_success_rate\": ".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    let rate: f64 = rate_txt
        .parse()
        .map_err(|e| format!("unparseable paper success rate {rate_txt:?}: {e}"))?;
    if (rate - 1.0).abs() > 1e-9 {
        return Err(format!(
            "paper platform success rate {rate} != 1.0 — the Section VII workload must \
             allocate completely"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;
    use crate::grid::{DseGrid, MeshDim, TrafficMix};

    fn tiny_grid() -> DseGrid {
        DseGrid {
            label: "tiny".into(),
            meshes: vec![MeshDim::new(2, 2, 1)],
            slot_table_sizes: vec![32, 64],
            link_pipeline_depths: vec![0],
            mixes: vec![TrafficMix::Light],
        }
    }

    #[test]
    fn tiny_sweep_report_is_consistent_and_serializes() {
        let mut report = run_sweep(&tiny_grid(), 2);
        report.attach_fault_scenarios();
        report.assert_gates();
        assert_eq!(report.points.len(), 2);
        let json = report.to_json();
        assert!(json.contains(REPORT_SCHEMA));
        assert!(json.contains("\"fault_scenarios\": [\n    {"));
        assert!(json.ends_with("}\n"));
        // Balanced braces — a cheap well-formedness smoke test.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
        assert!(report.summary_table().contains("2 points"));
        assert!(!report.pareto.is_empty());
        assert!(report.pareto_table().contains("mesh2x2n1"));
    }

    #[test]
    fn check_report_text_accepts_a_gated_report_shape() {
        // A minimal synthetic report exercising every gate path.
        let good = format!(
            "{{\n  \"schema\": \"{REPORT_SCHEMA}\",\n  \"pareto_front\": [\"x\"],\n  \
             \"fault_scenarios\": [\n    {{\n      \"id\": \"x\",\n      \
             \"affected\": 3\n    }}\n  ],\n  \
             \"points\": [\n    {{\n      \"id\": \"{PAPER_POINT_ID}\",\n      \
             \"alloc_success_rate\": 1.000\n    }}\n  ]\n}}\n"
        );
        assert_eq!(check_report_text(&good), Ok(()));

        let bad_schema = good.replace(REPORT_SCHEMA, "aelite-dse-report/0");
        assert!(check_report_text(&bad_schema).is_err());
        let empty_front = good.replace("\"pareto_front\": [\"x\"]", "\"pareto_front\": []");
        assert!(check_report_text(&empty_front).is_err());
        let no_fault = good.replace("\"fault_scenarios\"", "\"fault_scenario\"");
        assert!(check_report_text(&no_fault).unwrap_err().contains("fault"));
        let empty_fault = {
            let start = good.find("\"fault_scenarios\": [").unwrap();
            let end = good[start..].find(']').unwrap() + start;
            format!(
                "{}{}",
                &good[..start + "\"fault_scenarios\": [".len()],
                &good[end..]
            )
        };
        assert!(check_report_text(&empty_fault)
            .unwrap_err()
            .contains("empty"));
        let partial_paper = good.replace("1.000", "0.950");
        assert!(check_report_text(&partial_paper)
            .unwrap_err()
            .contains("0.95"));
        let no_paper = good.replace("mesh4x3n4", "mesh9x9n1");
        assert!(check_report_text(&no_paper).is_err());
    }
}
