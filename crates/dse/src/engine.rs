//! The parallel sweep engine: evaluate every grid point, deterministically.
//!
//! Workers pull point indices from a shared atomic cursor inside a
//! [`std::thread::scope`]; each worker keeps its own route cache per
//! topology shape, so every point sharing a mesh skips route enumeration
//! after the worker's first visit. Determinism does not depend on the
//! schedule: a point's result is a pure function of its coordinates (the
//! workload seed is derived from the point id, the allocator is
//! deterministic, and route caches only memoize topology-derived data
//! that is identical however it is rebuilt), and results land in a slot
//! vector indexed by enumeration order. One thread or sixteen, the
//! serialized report is byte-identical — pinned by
//! `tests/dse_determinism.rs`.

use crate::grid::{DesignPoint, DseGrid};
use crate::report::DseReport;
use aelite_alloc::allocate::{admission_order, Allocation};
use aelite_alloc::{Allocator, RouteCache, RouteProvider};
use aelite_dataflow::models::{predicted_flit_rate_per_us, wrapper_chain};
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::try_random_workload;
use aelite_spec::ids::ConnId;
use aelite_synth::components::{link_stage_area_um2, ni_area_um2, FifoKind};
use aelite_synth::power::component_power;
use aelite_synth::router::{synthesize, RouterParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a design point fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOutcome {
    /// Every connection of the drawn workload was allocated.
    Full,
    /// The workload was drawn but only a fraction of its connections fit
    /// (admitted one at a time, hardest first).
    Partial,
    /// No feasible workload of the requested profile could even be drawn
    /// on this platform (the generator's per-link budgets overflow).
    WorkloadInfeasible,
}

impl PointOutcome {
    /// The stable lower-case tag used in reports.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PointOutcome::Full => "full",
            PointOutcome::Partial => "partial",
            PointOutcome::WorkloadInfeasible => "workload_infeasible",
        }
    }
}

/// Everything the sweep measured at one design point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point's coordinates.
    pub point: DesignPoint,
    /// The workload seed the point drew (derived from its id).
    pub seed: u64,
    /// How the point fared.
    pub outcome: PointOutcome,
    /// Connections the traffic mix asked for.
    pub connections_requested: u32,
    /// Connections that received a contention-free grant.
    pub connections_granted: u32,
    /// `granted / requested`.
    pub alloc_success_rate: f64,
    /// Worst analytical per-flit latency bound over all granted
    /// connections, ns (0 when nothing was granted).
    pub worst_case_flit_latency_ns: f64,
    /// Mean slot utilisation over links carrying traffic.
    pub mean_loaded_utilisation: f64,
    /// Peak slot utilisation over all links.
    pub peak_utilisation: f64,
    /// Sum of the guaranteed payload bandwidth of every grant, GB/s.
    pub guaranteed_throughput_gbytes: f64,
    /// Steady-state flit rate of the longest NI-to-NI wrapper chain
    /// (dataflow MCM analysis), flits/µs.
    pub dataflow_flit_rate_per_us: f64,
    /// Estimated silicon area of the platform (routers + link pipeline
    /// stages + NIs sized for the drawn workload), mm².
    pub area_mm2: f64,
    /// Estimated power at the operating point, mW.
    pub power_mw: f64,
}

/// Evaluates one design point: draw the workload, allocate (falling back
/// to one-at-a-time admission when the batch flow fails), analyse, and
/// price the platform.
///
/// Pure in the point's coordinates: the same point always produces the
/// same result, whatever `routes` already contains.
///
/// # Panics
///
/// Panics if `routes` was built for a different topology shape or
/// `max_paths` bound than this point's platform and the default
/// [`Allocator`] use.
#[must_use]
pub fn evaluate_point<R: RouteProvider + ?Sized>(
    point: &DesignPoint,
    routes: &mut R,
) -> PointResult {
    let topo = point.topology();
    let cfg = point.config();
    let params = point.workload_params();
    let seed = point.seed();
    let requested = params.connections;

    let spec = match try_random_workload(topo.clone(), cfg, params, seed) {
        Ok(spec) => spec,
        Err(_) => {
            // The platform cannot even carry the profile's draw budgets;
            // price the bare platform and move on.
            return PointResult {
                point: *point,
                seed,
                outcome: PointOutcome::WorkloadInfeasible,
                connections_requested: requested,
                connections_granted: 0,
                alloc_success_rate: 0.0,
                worst_case_flit_latency_ns: 0.0,
                mean_loaded_utilisation: 0.0,
                peak_utilisation: 0.0,
                guaranteed_throughput_gbytes: 0.0,
                dataflow_flit_rate_per_us: dataflow_rate(point),
                area_mm2: platform_area_um2(point, &vec![0u32; topo.ni_count()]) / 1.0e6,
                power_mw: 0.0,
            };
        }
    };

    let allocator = Allocator::new();
    let (alloc, granted) = match allocator.allocate_with_cache(&spec, routes) {
        Ok(alloc) => {
            let granted = alloc.grants().count() as u32;
            (alloc, granted)
        }
        Err(_) => admit_incrementally(&allocator, &spec, routes),
    };

    let mut worst_ns = 0.0f64;
    let mut throughput_bytes = 0u64;
    for c in spec.connections() {
        if alloc.grant(c.id).is_some() {
            worst_ns = worst_ns.max(alloc.worst_case_latency_ns(&spec, c.id));
            throughput_bytes += alloc.allocated_bandwidth(&spec, c.id).bytes_per_sec();
        }
    }

    // NIs are provisioned for the connections the spec *asked* of them,
    // granted or not — hardware is sized before allocation runs.
    let mut conns_per_ni = vec![0u32; topo.ni_count()];
    for c in spec.connections() {
        conns_per_ni[spec.ip_ni(c.src).index()] += 1;
        conns_per_ni[spec.ip_ni(c.dst).index()] += 1;
    }
    let area_um2 = platform_area_um2(point, &conns_per_ni);
    let mean_util = alloc.mean_loaded_utilisation();

    PointResult {
        point: *point,
        seed,
        outcome: if granted == requested {
            PointOutcome::Full
        } else {
            PointOutcome::Partial
        },
        connections_requested: requested,
        connections_granted: granted,
        alloc_success_rate: f64::from(granted) / f64::from(requested),
        worst_case_flit_latency_ns: worst_ns,
        mean_loaded_utilisation: mean_util,
        peak_utilisation: alloc.peak_utilisation(),
        guaranteed_throughput_gbytes: throughput_bytes as f64 / 1.0e9,
        dataflow_flit_rate_per_us: dataflow_rate(point),
        area_mm2: area_um2 / 1.0e6,
        power_mw: component_power(area_um2, cfg.frequency_mhz as f64, mean_util).total_mw(),
    }
}

/// Admission fallback when the all-or-nothing batch allocation fails:
/// serve connections hardest-first (the batch flow's own order), one
/// [`Allocator::extend_with_cache`] call each, keeping every success.
/// Returns the partial allocation and the number of grants.
pub(crate) fn admit_incrementally<R: RouteProvider + ?Sized>(
    allocator: &Allocator,
    spec: &SystemSpec,
    routes: &mut R,
) -> (Allocation, u32) {
    let mut order: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
    admission_order(spec, &mut order);
    let mut alloc = Allocation::empty_for(spec);
    let mut granted = 0u32;
    for conn in order {
        if allocator
            .extend_with_cache(spec, &mut alloc, &[conn], routes)
            .is_ok()
        {
            granted += 1;
        }
    }
    (alloc, granted)
}

/// The predicted steady-state flit rate of the longest NI→router→…→NI
/// chain of the platform, with each link's mesochronous pipeline stages
/// modelled as extra flit-cycle actors (paper Section V / footnote 1).
fn dataflow_rate(point: &DesignPoint) -> f64 {
    let cfg = point.config();
    let hops = (point.mesh.cols - 1) + (point.mesh.rows - 1);
    let links = hops + 2; // NI ingress + per-hop links + NI egress
    let elements = 2 + (hops + 1) + links * point.link_pipeline_stages;
    let freqs = vec![cfg.frequency_mhz as f64; elements as usize];
    let chain = wrapper_chain(&freqs, cfg.flit_words, 2);
    predicted_flit_rate_per_us(&chain)
}

/// Cell-area estimate of the platform in µm²: every router synthesised
/// at its actual arity and the operating frequency, `link_pipeline_stages`
/// mesochronous stages (custom FIFOs) on every link, and each NI sized
/// for the connections that terminate on it (at least one, the
/// provisioning floor).
fn platform_area_um2(point: &DesignPoint, conns_per_ni: &[u32]) -> f64 {
    let topo = point.topology();
    let cfg = point.config();
    let width = cfg.data_width_bits;
    let f_mhz = cfg.frequency_mhz as f64;

    let routers: f64 = topo
        .routers()
        .map(|r| {
            let arity = u32::try_from(topo.arity(r)).expect("arity fits u32");
            synthesize(&RouterParams::symmetric(arity.clamp(1, 8), width), f_mhz).area_um2
        })
        .sum();
    let links = point.link_pipeline_stages as f64
        * topo.link_count() as f64
        * link_stage_area_um2(FifoKind::Custom, width);
    let nis: f64 = conns_per_ni
        .iter()
        .map(|&c| ni_area_um2(c.max(1), cfg.ni_buffer_words, width, cfg.slot_table_size))
        .sum();
    routers + links + nis
}

/// Sweeps every point of `grid` over `threads` workers (`0` = one per
/// available CPU) and collects the results into a [`DseReport`].
///
/// The report is identical whatever `threads` is; see the module docs.
#[must_use]
pub fn run_sweep(grid: &DseGrid, threads: usize) -> DseReport {
    let points = grid.points();
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(points.len().max(1));

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<PointResult>>> = Mutex::new(vec![None; points.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One cache per topology shape, reused across every point
                // of this worker that shares the mesh.
                let mut caches: HashMap<(u32, u32, u32), RouteCache> = HashMap::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(i) else { break };
                    let key = (point.mesh.cols, point.mesh.rows, point.mesh.nis_per_router);
                    let routes = caches.entry(key).or_insert_with(|| {
                        RouteCache::new(&point.topology(), Allocator::new().max_paths)
                    });
                    let result = evaluate_point(point, routes);
                    slots.lock().expect("no poisoned workers")[i] = Some(result);
                }
            });
        }
    });

    let results: Vec<PointResult> = slots
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|r| r.expect("every point evaluated"))
        .collect();
    DseReport::new(&grid.label, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{MeshDim, TrafficMix};

    fn tiny_point() -> DesignPoint {
        DesignPoint {
            mesh: MeshDim::new(2, 2, 1),
            slot_table_size: 32,
            link_pipeline_stages: 0,
            mix: TrafficMix::Light,
        }
    }

    #[test]
    fn tiny_point_evaluates_fully() {
        let p = tiny_point();
        let mut routes = RouteCache::new(&p.topology(), Allocator::new().max_paths);
        let r = evaluate_point(&p, &mut routes);
        assert_eq!(r.outcome, PointOutcome::Full);
        assert_eq!(r.connections_granted, r.connections_requested);
        assert!((r.alloc_success_rate - 1.0).abs() < f64::EPSILON);
        assert!(r.worst_case_flit_latency_ns > 0.0);
        assert!(r.guaranteed_throughput_gbytes > 0.0);
        assert!(r.area_mm2 > 0.0);
        assert!(r.power_mw > 0.0);
        // 2x2 mesh at 500 MHz: the chain runs at one flit per 6 ns.
        assert!((r.dataflow_flit_rate_per_us - 1000.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn evaluation_is_independent_of_cache_warmth() {
        let p = tiny_point();
        let mut cold = RouteCache::new(&p.topology(), Allocator::new().max_paths);
        let a = evaluate_point(&p, &mut cold);
        // Same cache, second pass: fully warm.
        let b = evaluate_point(&p, &mut cold);
        assert_eq!(a.connections_granted, b.connections_granted);
        assert!((a.guaranteed_throughput_gbytes - b.guaranteed_throughput_gbytes).abs() == 0.0);
        assert!((a.worst_case_flit_latency_ns - b.worst_case_flit_latency_ns).abs() == 0.0);
        assert!((a.area_mm2 - b.area_mm2).abs() == 0.0);
    }

    #[test]
    fn pipeline_stages_lengthen_the_chain_but_keep_the_rate() {
        let mut p = tiny_point();
        let base = dataflow_rate(&p);
        p.link_pipeline_stages = 2;
        let piped = dataflow_rate(&p);
        assert!((base - piped).abs() < 1e-9, "{base} vs {piped}");
    }

    #[test]
    fn incremental_admission_grants_a_prefix_under_oversubscription() {
        // A deliberately oversubscribed point: heavy mix on the smallest
        // mesh with the smallest table.
        let p = DesignPoint {
            mesh: MeshDim::new(2, 2, 1),
            slot_table_size: 32,
            link_pipeline_stages: 0,
            mix: TrafficMix::Heavy,
        };
        let mut routes = RouteCache::new(&p.topology(), Allocator::new().max_paths);
        let r = evaluate_point(&p, &mut routes);
        // Whatever the outcome, the invariants hold.
        assert!(r.connections_granted <= r.connections_requested);
        let expect = f64::from(r.connections_granted) / f64::from(r.connections_requested);
        assert!((r.alloc_success_rate - expect).abs() < 1e-12);
        if r.outcome == PointOutcome::Partial {
            assert!(r.connections_granted < r.connections_requested);
        }
    }
}
