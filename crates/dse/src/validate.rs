//! Simulation-backed validation of the Pareto front.
//!
//! The sweep's guarantees are *analytical*: every point's
//! `worst_case_flit_latency_ns` comes from the allocator's closed-form
//! bound, never from simulation. That is the paper's promise — but a
//! promise worth spot-checking. This module replays every point of a
//! report's area-vs-throughput Pareto front through the cycle-accurate
//! **turbo kernel** ([`aelite_noc::turbo`], bit-for-bit equivalent to
//! the event-driven [`Simulator`]-based build and fast enough to run in
//! CI) and asserts that the **measured** worst-case per-flit latency of
//! every connection stays within the analytical bound.
//!
//! Determinism carries over: a point's workload, allocation and traffic
//! are pure functions of its [`DseGrid`](crate::grid::DseGrid)
//! coordinates, and the turbo kernel is deterministic, so validation
//! verdicts are reproducible bit-for-bit.
//!
//! [`Simulator`]: aelite_sim::scheduler::Simulator

use crate::engine::admit_incrementally;
use crate::grid::DesignPoint;
use crate::report::DseReport;
use aelite_alloc::Allocator;
use aelite_noc::network::NetworkKind;
use aelite_noc::turbo::build_turbo;
use aelite_spec::generate::try_random_workload;
use core::fmt;

/// The simulated horizon of one validation replay, in cycles — enough
/// table revolutions for every connection (slowest CBR interval ≈ 3200
/// cycles at the 10 MB/s floor) to deliver a healthy flit sample.
pub const VALIDATE_DURATION_CYCLES: u64 = 30_000;

/// The verdict of replaying one Pareto-front point.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedPoint {
    /// The point's stable id.
    pub id: String,
    /// `synchronous` or `mesochronous` (from the point's pipeline depth).
    pub kind: &'static str,
    /// Connections simulated.
    pub connections: u32,
    /// Total flits delivered inside the horizon.
    pub flits: u64,
    /// Worst measured per-flit latency over all connections, cycles.
    pub worst_measured_cycles: u64,
    /// Worst analytical bound over all connections, cycles.
    pub worst_bound_cycles: u64,
}

impl ValidatedPoint {
    /// Measured worst case as a fraction of the analytical bound.
    #[must_use]
    pub fn headroom(&self) -> f64 {
        if self.worst_bound_cycles == 0 {
            return 0.0;
        }
        self.worst_measured_cycles as f64 / self.worst_bound_cycles as f64
    }
}

impl fmt::Display for ValidatedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:>13} {:>6} {:>9} {:>12} {:>10} {:>7.0}%",
            self.id,
            self.kind,
            self.connections,
            self.flits,
            self.worst_measured_cycles,
            self.worst_bound_cycles,
            100.0 * self.headroom(),
        )
    }
}

/// The header line matching [`ValidatedPoint`]'s `Display` columns.
#[must_use]
pub fn validation_table_header() -> String {
    format!(
        "{:<28} {:>13} {:>6} {:>9} {:>12} {:>10} {:>8}",
        "pareto point", "kind", "conns", "flits", "measured", "bound", "ratio"
    )
}

/// Replays one design point through the turbo kernel and asserts the
/// measured worst-case per-flit latency of **every** connection stays
/// within its analytical bound.
///
/// # Panics
///
/// Panics if the point's workload cannot be redrawn or fully allocated
/// (callers pass Pareto-front points, which are `Full` by construction),
/// if a connection delivers no flits inside the horizon, or — the
/// verdict this stage exists for — if any measured latency exceeds its
/// bound.
#[must_use]
pub fn validate_point(point: &DesignPoint, duration_cycles: u64) -> ValidatedPoint {
    let spec = try_random_workload(
        point.topology(),
        point.config(),
        point.workload_params(),
        point.seed(),
    )
    .unwrap_or_else(|e| panic!("{}: workload no longer draws: {e}", point.id()));

    // Reproduce the sweep engine's allocation exactly: batch flow first,
    // hardest-first incremental admission as the fallback.
    let allocator = Allocator::new();
    let alloc = match aelite_alloc::allocate(&spec) {
        Ok(alloc) => alloc,
        Err(_) => {
            admit_incrementally(
                &allocator,
                &spec,
                &mut aelite_alloc::RouteCache::new(spec.topology(), allocator.max_paths),
            )
            .0
        }
    };

    let (kind, kind_tag) = match point.link_pipeline_stages {
        0 => (NetworkKind::Synchronous, "synchronous"),
        1 => (
            NetworkKind::Mesochronous {
                phase_seed: point.seed(),
            },
            "mesochronous",
        ),
        d => panic!("{}: unsupported link pipeline depth {d}", point.id()),
    };

    let mut net = build_turbo(&spec, &alloc, kind, true);
    net.run_cycles(duration_cycles);

    let mut flits = 0u64;
    let mut worst_measured = 0u64;
    let mut worst_bound = 0u64;
    for c in spec.connections() {
        let lat = net.latency(c.id);
        let bound = alloc.worst_case_latency_cycles(&spec, c.id);
        assert!(
            lat.flits > 0,
            "{}: {} delivered no flits in {duration_cycles} cycles",
            point.id(),
            c.id
        );
        assert!(
            lat.max_cycles <= bound,
            "{}: {} measured worst-case latency {} cycles exceeds the analytical \
             bound {bound} — the guarantee the sweep reports would be wrong",
            point.id(),
            c.id,
            lat.max_cycles
        );
        flits += lat.flits;
        worst_measured = worst_measured.max(lat.max_cycles);
        worst_bound = worst_bound.max(bound);
    }

    ValidatedPoint {
        id: point.id(),
        kind: kind_tag,
        connections: spec.connections().len() as u32,
        flits,
        worst_measured_cycles: worst_measured,
        worst_bound_cycles: worst_bound,
    }
}

/// Replays every point of `report`'s Pareto front (see
/// [`validate_point`]); returns one verdict row per point, in front
/// order.
///
/// # Panics
///
/// Panics if the report's front is empty (a gated report never is), or
/// as [`validate_point`] on any bound violation.
#[must_use]
pub fn validate_front(report: &DseReport, duration_cycles: u64) -> Vec<ValidatedPoint> {
    assert!(
        !report.pareto.is_empty(),
        "cannot validate an empty Pareto front"
    );
    report
        .pareto
        .iter()
        .map(|&i| validate_point(&report.points[i].point, duration_cycles))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep;
    use crate::grid::{DseGrid, MeshDim, TrafficMix};

    fn tiny_grid() -> DseGrid {
        DseGrid {
            label: "tiny".into(),
            meshes: vec![MeshDim::new(2, 2, 1), MeshDim::new(2, 2, 2)],
            slot_table_sizes: vec![32],
            link_pipeline_depths: vec![0, 1],
            mixes: vec![TrafficMix::Light],
        }
    }

    #[test]
    fn tiny_front_validates_within_bounds() {
        let report = run_sweep(&tiny_grid(), 2);
        let rows = validate_front(&report, 20_000);
        assert_eq!(rows.len(), report.pareto.len());
        for row in &rows {
            assert!(row.flits > 0);
            assert!(row.worst_measured_cycles <= row.worst_bound_cycles);
            assert!(row.headroom() <= 1.0);
            assert!(!row.to_string().is_empty());
        }
        // Both organisations appear in this grid's validation.
        assert!(rows.iter().any(|r| r.kind == "synchronous"));
    }

    #[test]
    fn validation_is_deterministic() {
        let report = run_sweep(&tiny_grid(), 1);
        let a = validate_front(&report, 10_000);
        let b = validate_front(&report, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn header_aligns_with_rows() {
        assert!(validation_table_header().contains("measured"));
    }
}
