//! # aelite-dse — parallel design-space exploration for the aelite NoC
//!
//! The paper's central promise is that composable, predictable TDM
//! services make a platform *evaluable*: slot tables, mesochronous links
//! and dataflow models exist so that a designer can sweep configurations
//! and trust the numbers without simulating each one. This crate is that
//! sweep, industrialised:
//!
//! * [`grid`] — the design space: mesh dimensions × slot-table sizes ×
//!   link pipeline depths × traffic mixes, each point with a stable id
//!   and a seed derived purely from its coordinates.
//! * [`engine`] — the multi-threaded batch engine: a
//!   [`std::thread::scope`] worker pool pulling points from an atomic
//!   cursor, reusing an [`aelite_alloc::RouteCache`] across every point
//!   that shares a topology, and falling back to hardest-first
//!   incremental admission when a workload does not fit completely.
//! * [`pareto`] — dominance filtering for the area-vs-guaranteed-
//!   throughput front.
//! * [`report`] — the collector: aggregates, the Pareto front, the
//!   stable `DSE_REPORT.json` serialization and summary tables.
//! * [`validate`] — the simulation-backed check: every Pareto-front
//!   point is replayed through `aelite_noc`'s turbo kernel and the
//!   measured worst-case latency asserted against the analytical bound.
//! * [`churn`] — the online-reconfiguration scenario: every Pareto-front
//!   point is driven through `aelite_online`'s [`ChurnEngine`] under a
//!   Poisson open/close/use-case-switch trace, reporting its admission
//!   outcome and sustained churn rate alongside area and throughput.
//! * [`fault`] — the robustness scenario: every Pareto-front point is
//!   replayed through the [`FaultEngine`] under a seeded merged churn +
//!   fault trace (failures, repairs, transient glitches); the resulting
//!   deterministic admission/displacement counts are folded into
//!   `DSE_REPORT.json` (schema `aelite-dse-report/2`) and gated by
//!   `dse_sweep --check`.
//!
//! [`ChurnEngine`]: aelite_online::ChurnEngine
//! [`FaultEngine`]: aelite_online::FaultEngine
//!
//! Determinism is the design constraint throughout: every per-point
//! quantity is a pure function of the point's coordinates, so the same
//! grid serializes to the same bytes on 1 worker or 16 (pinned by
//! `tests/dse_determinism.rs`).
//!
//! # Examples
//!
//! Sweep a one-point grid and read the verdict:
//!
//! ```
//! use aelite_dse::engine::run_sweep;
//! use aelite_dse::grid::{DseGrid, MeshDim, TrafficMix};
//!
//! let grid = DseGrid {
//!     label: "doc".into(),
//!     meshes: vec![MeshDim::new(2, 2, 1)],
//!     slot_table_sizes: vec![32],
//!     link_pipeline_depths: vec![0],
//!     mixes: vec![TrafficMix::Light],
//! };
//! let report = run_sweep(&grid, 1);
//! report.assert_gates();
//! assert_eq!(report.points.len(), 1);
//! assert!(report.points[0].alloc_success_rate > 0.0);
//! ```
//!
//! The `dse_sweep` example runs the full 126-point grid and writes
//! `DSE_REPORT.json`; CI replays a reduced grid and gates on it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod engine;
pub mod fault;
pub mod grid;
pub mod pareto;
pub mod report;
pub mod validate;

pub use engine::{evaluate_point, run_sweep, PointOutcome, PointResult};
pub use fault::{fault_front, fault_point, FaultScenarioPoint};
pub use grid::{DesignPoint, DseGrid, MeshDim, TrafficMix, PAPER_POINT_ID};
pub use pareto::{dominates, pareto_front, Candidate};
pub use report::{check_report_text, DseReport, REPORT_SCHEMA};
pub use validate::{validate_front, validate_point, ValidatedPoint, VALIDATE_DURATION_CYCLES};
