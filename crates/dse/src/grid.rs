//! The design-space grid: which platforms and traffic profiles a sweep
//! visits, and the deterministic identity of each point.
//!
//! A [`DseGrid`] is the cross product of mesh dimensions, slot-table
//! sizes, link pipeline depths and [`TrafficMix`]es. Every
//! [`DesignPoint`] owns a stable textual [`id`](DesignPoint::id) and a
//! seed derived from that id by FNV-1a hashing — never from thread ids,
//! wall clocks or enumeration order — so a sweep's results are
//! bit-for-bit reproducible regardless of how many workers evaluate it.

use aelite_spec::config::NocConfig;
use aelite_spec::generate::WorkloadParams;
use aelite_spec::topology::Topology;
use core::fmt;

/// The id of the paper's Section VII platform inside the full and
/// reduced grids: 4×3 mesh, 4 NIs per router, 64-slot tables, directly
/// connected links, paper traffic profile.
pub const PAPER_POINT_ID: &str = "mesh4x3n4_t64_p0_paper";

/// Mesh dimensions of one platform candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshDim {
    /// Mesh columns.
    pub cols: u32,
    /// Mesh rows.
    pub rows: u32,
    /// NIs concentrated on each router.
    pub nis_per_router: u32,
}

impl MeshDim {
    /// A new mesh dimension triple.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, or when an interior router would exceed
    /// the arity-8 bound of the synthesis model (4 neighbours +
    /// `nis_per_router` ports).
    #[must_use]
    pub fn new(cols: u32, rows: u32, nis_per_router: u32) -> Self {
        assert!(cols > 0 && rows > 0 && nis_per_router > 0, "zero dimension");
        assert!(
            4 + nis_per_router <= 8,
            "interior router arity {} exceeds the synthesis model's bound of 8",
            4 + nis_per_router
        );
        MeshDim {
            cols,
            rows,
            nis_per_router,
        }
    }

    /// Number of NIs on this mesh.
    #[must_use]
    pub fn ni_count(&self) -> u32 {
        self.cols * self.rows * self.nis_per_router
    }
}

impl fmt::Display for MeshDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}n{}", self.cols, self.rows, self.nis_per_router)
    }
}

/// A traffic profile, scaled to whatever platform it is drawn on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficMix {
    /// The paper's Section VII per-connection profile (log-uniform
    /// 10–500 MB/s, 35–500 ns deadlines), with connection and IP counts
    /// scaled from the paper's 200-connections-on-48-NIs density.
    Paper,
    /// A light synthetic profile (10–100 MB/s, relaxed 300–3000 ns
    /// deadlines), 5 connections per NI — the regime of the allocator
    /// throughput benchmarks.
    Light,
    /// A heavy synthetic profile (20–200 MB/s, 300–3000 ns deadlines),
    /// 8 connections per NI — the oversubscription-probing regime.
    Heavy,
}

impl TrafficMix {
    /// All mixes, in report order.
    pub const ALL: [TrafficMix; 3] = [TrafficMix::Paper, TrafficMix::Light, TrafficMix::Heavy];

    /// The stable lower-case tag used in point ids and reports.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            TrafficMix::Paper => "paper",
            TrafficMix::Light => "light",
            TrafficMix::Heavy => "heavy",
        }
    }
}

impl fmt::Display for TrafficMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One coordinate of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// The mesh platform.
    pub mesh: MeshDim,
    /// TDM slot-table size (NoC-wide).
    pub slot_table_size: u32,
    /// Mesochronous pipeline stages per link (0 = synchronous NoC).
    pub link_pipeline_stages: u32,
    /// The traffic profile drawn onto the platform.
    pub mix: TrafficMix,
}

impl DesignPoint {
    /// The point's stable textual identity, e.g. `mesh4x3n4_t64_p0_paper`.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "mesh{}_t{}_p{}_{}",
            self.mesh,
            self.slot_table_size,
            self.link_pipeline_stages,
            self.mix.tag()
        )
    }

    /// The workload seed: FNV-1a over the point id. A pure function of
    /// the coordinates, so any execution schedule draws the same
    /// workload for the same point.
    #[must_use]
    pub fn seed(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.id().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// The NoC configuration of this point: the paper's 32-bit/500 MHz
    /// geometry with the point's slot-table size and pipeline depth.
    #[must_use]
    pub fn config(&self) -> NocConfig {
        let mut cfg = NocConfig::paper_default();
        cfg.slot_table_size = self.slot_table_size;
        cfg.link_pipeline_stages = self.link_pipeline_stages;
        cfg
    }

    /// Builds the point's topology (deterministic per coordinates).
    #[must_use]
    pub fn topology(&self) -> Topology {
        Topology::mesh(self.mesh.cols, self.mesh.rows, self.mesh.nis_per_router)
    }

    /// The workload parameters of the point's [`TrafficMix`], scaled to
    /// its platform.
    #[must_use]
    pub fn workload_params(&self) -> WorkloadParams {
        let ni = self.mesh.ni_count();
        match self.mix {
            // The paper drew 200 connections over 70 IPs on 48 NIs; keep
            // that density on other platforms.
            TrafficMix::Paper => WorkloadParams {
                apps: 4,
                connections: (ni * 200 / 48).max(1),
                ips: (ni * 70 / 48).max(2),
                bw_min_mb: 10,
                bw_max_mb: 500,
                lat_min_ns: 35,
                lat_max_ns: 500,
                message_bytes: 64,
                ni_load_cap: 0.6,
            },
            TrafficMix::Light => WorkloadParams {
                apps: 4,
                connections: ni * 5,
                ips: ni.max(2),
                bw_min_mb: 10,
                bw_max_mb: 100,
                lat_min_ns: 300,
                lat_max_ns: 3000,
                message_bytes: 64,
                ni_load_cap: 0.5,
            },
            TrafficMix::Heavy => WorkloadParams {
                apps: 4,
                connections: ni * 8,
                ips: ni.max(2),
                bw_min_mb: 20,
                bw_max_mb: 200,
                lat_min_ns: 300,
                lat_max_ns: 3000,
                message_bytes: 64,
                ni_load_cap: 0.6,
            },
        }
    }

    /// Whether this point is the paper's Section VII platform
    /// ([`PAPER_POINT_ID`]).
    #[must_use]
    pub fn is_paper_platform(&self) -> bool {
        self.id() == PAPER_POINT_ID
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// A rectangular design-space grid: the cross product of its axes.
#[derive(Debug, Clone)]
pub struct DseGrid {
    /// A short label recorded in the report (`full`, `reduced`, …).
    pub label: String,
    /// Mesh platforms to visit.
    pub meshes: Vec<MeshDim>,
    /// Slot-table sizes to visit.
    pub slot_table_sizes: Vec<u32>,
    /// Link pipeline depths to visit.
    pub link_pipeline_depths: Vec<u32>,
    /// Traffic mixes to draw on each platform.
    pub mixes: Vec<TrafficMix>,
}

impl DseGrid {
    /// The full exploration grid: 7 meshes (2×2 … 8×8) × 3 slot-table
    /// sizes × 2 link pipeline depths × 3 traffic mixes = 126 points,
    /// including the paper platform ([`PAPER_POINT_ID`]).
    #[must_use]
    pub fn full() -> Self {
        DseGrid {
            label: "full".into(),
            meshes: vec![
                MeshDim::new(2, 2, 2),
                MeshDim::new(3, 3, 2),
                MeshDim::new(4, 3, 4),
                MeshDim::new(4, 4, 2),
                MeshDim::new(4, 4, 4),
                MeshDim::new(6, 6, 2),
                MeshDim::new(8, 8, 4),
            ],
            slot_table_sizes: vec![32, 64, 128],
            link_pipeline_depths: vec![0, 1],
            mixes: TrafficMix::ALL.to_vec(),
        }
    }

    /// A reduced grid for CI and the determinism tests: 3 meshes × 2
    /// slot-table sizes × 1 pipeline depth × 2 mixes = 12 points, still
    /// including the paper platform.
    #[must_use]
    pub fn reduced() -> Self {
        DseGrid {
            label: "reduced".into(),
            meshes: vec![
                MeshDim::new(2, 2, 1),
                MeshDim::new(2, 2, 2),
                MeshDim::new(4, 3, 4),
            ],
            slot_table_sizes: vec![32, 64],
            link_pipeline_depths: vec![0],
            mixes: vec![TrafficMix::Paper, TrafficMix::Light],
        }
    }

    /// Number of points in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meshes.len()
            * self.slot_table_sizes.len()
            * self.link_pipeline_depths.len()
            * self.mixes.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every point, mesh-major so that consecutive points
    /// share a topology (maximising [`RouteCache`] reuse within a
    /// worker), then by table size, pipeline depth and mix.
    ///
    /// [`RouteCache`]: aelite_alloc::RouteCache
    #[must_use]
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut pts = Vec::with_capacity(self.len());
        for &mesh in &self.meshes {
            for &slot_table_size in &self.slot_table_sizes {
                for &link_pipeline_stages in &self.link_pipeline_depths {
                    for &mix in &self.mixes {
                        pts.push(DesignPoint {
                            mesh,
                            slot_table_size,
                            link_pipeline_stages,
                            mix,
                        });
                    }
                }
            }
        }
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_at_least_100_points_and_the_paper_platform() {
        let grid = DseGrid::full();
        let points = grid.points();
        assert!(points.len() >= 100, "only {} points", points.len());
        assert_eq!(points.len(), grid.len());
        assert_eq!(
            points.iter().filter(|p| p.is_paper_platform()).count(),
            1,
            "exactly one paper platform point"
        );
    }

    #[test]
    fn reduced_grid_contains_the_paper_platform() {
        let points = DseGrid::reduced().points();
        assert!(points.iter().any(DesignPoint::is_paper_platform));
        assert_eq!(points.len(), 12);
    }

    #[test]
    fn point_ids_are_unique_and_stable() {
        let points = DseGrid::full().points();
        let mut ids: Vec<String> = points.iter().map(DesignPoint::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), points.len(), "duplicate point ids");
        // A pinned spot check: renaming ids silently invalidates committed
        // reports, so treat the format as a schema.
        assert_eq!(
            DseGrid::full()
                .points()
                .iter()
                .find(|p| p.is_paper_platform())
                .unwrap()
                .id(),
            PAPER_POINT_ID
        );
    }

    #[test]
    fn seeds_depend_only_on_coordinates() {
        let a = DseGrid::full().points();
        let b = DseGrid::full().points();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed(), y.seed());
        }
        // Distinct points draw distinct workloads.
        assert_ne!(a[0].seed(), a[1].seed());
    }

    #[test]
    fn paper_point_params_match_the_paper_workload() {
        let p = DseGrid::full()
            .points()
            .into_iter()
            .find(|p| p.is_paper_platform())
            .unwrap();
        let params = p.workload_params();
        assert_eq!(params, WorkloadParams::paper());
        assert_eq!(p.config().slot_table_size, 64);
        assert_eq!(p.topology().ni_count(), 48);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn oversized_concentration_rejected() {
        let _ = MeshDim::new(4, 4, 5);
    }
}
