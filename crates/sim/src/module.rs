//! The module trait implemented by every clocked hardware model.

use crate::signal::{SignalStore, Wire};
use crate::time::SimTime;

/// One clocked hardware block (a router, a link-stage FSM, an NI, ...).
///
/// A module is registered with a [`Simulator`](crate::scheduler::Simulator)
/// in exactly one clock domain and has its [`on_edge`](Module::on_edge)
/// called once per rising edge of that domain's clock. Inside `on_edge` the
/// module reads its input wires (seeing values committed before this edge)
/// and writes its output wires (visible to others only after this edge) —
/// exactly the semantics of flip-flop based synchronous hardware.
///
/// Modules that need to expose results to the testbench (e.g. traffic sinks
/// recording arrival timestamps) should share an
/// [`Rc<RefCell<_>>`](std::rc::Rc) handle with their creator rather than
/// relying on downcasting.
pub trait Module {
    /// The value type carried by the wires this module connects to.
    type Value: Copy + Default;

    /// A diagnostic name for error messages and traces.
    fn name(&self) -> &str;

    /// Called once per rising clock edge of the module's domain.
    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, Self::Value>);
}

/// Execution context handed to [`Module::on_edge`].
///
/// Provides register-semantics access to the wire store plus the current
/// simulated time and the module-domain cycle count.
#[derive(Debug)]
pub struct EdgeContext<'a, V> {
    signals: &'a mut SignalStore<V>,
    time: SimTime,
    cycle: u64,
}

impl<'a, V: Copy + Default> EdgeContext<'a, V> {
    pub(crate) fn new(signals: &'a mut SignalStore<V>, time: SimTime, cycle: u64) -> Self {
        EdgeContext {
            signals,
            time,
            cycle,
        }
    }

    /// The value committed on `wire` before this edge.
    #[must_use]
    pub fn read(&self, wire: Wire<V>) -> V {
        self.signals.read(wire)
    }

    /// Drives `wire` with `value`; becomes visible after this edge.
    ///
    /// # Panics
    ///
    /// Panics if another module already drove `wire` at this instant.
    pub fn write(&mut self, wire: Wire<V>, value: V) {
        self.signals.write(wire, value);
    }

    /// The absolute simulation time of this edge.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The 0-based index of this edge within the module's clock domain.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passthrough {
        input: Wire<u32>,
        output: Wire<u32>,
    }

    impl Module for Passthrough {
        type Value = u32;
        fn name(&self) -> &str {
            "passthrough"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u32>) {
            let v = ctx.read(self.input);
            ctx.write(self.output, v + 1);
        }
    }

    #[test]
    fn context_reads_committed_and_buffers_writes() {
        let mut store: SignalStore<u32> = SignalStore::new();
        let input = store.add_wire("in");
        let output = store.add_wire("out");
        store.poke(input, 5);

        let mut module = Passthrough { input, output };
        let mut ctx = EdgeContext::new(&mut store, SimTime::from_ns(1), 3);
        assert_eq!(ctx.time(), SimTime::from_ns(1));
        assert_eq!(ctx.cycle(), 3);
        module.on_edge(&mut ctx);

        // Write not yet visible.
        assert_eq!(store.read(output), 0);
        store.commit();
        assert_eq!(store.read(output), 6);
    }
}
