//! The discrete-event simulator driving all clock domains.
//!
//! The simulator owns the [`SignalStore`], the set of [`ClockSpec`] domains
//! and the modules registered in each. Time advances edge by edge: the next
//! pending rising edge over all domains is located, **every** module whose
//! domain has an edge at that instant runs (sampling the pre-edge wire
//! values), and only then are all wire writes committed. Coincident edges of
//! different domains therefore behave exactly like simultaneously-clocked
//! flip-flops; results never depend on registration order.
//!
//! # Examples
//!
//! ```
//! use aelite_sim::clock::ClockSpec;
//! use aelite_sim::module::{EdgeContext, Module};
//! use aelite_sim::scheduler::Simulator;
//! use aelite_sim::signal::Wire;
//! use aelite_sim::time::{Frequency, SimTime};
//!
//! struct Counter {
//!     out: Wire<u32>,
//! }
//! impl Module for Counter {
//!     type Value = u32;
//!     fn name(&self) -> &str {
//!         "counter"
//!     }
//!     fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u32>) {
//!         let v = ctx.read(self.out);
//!         ctx.write(self.out, v + 1);
//!     }
//! }
//!
//! let mut sim: Simulator<u32> = Simulator::new();
//! let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
//! let out = sim.add_wire("count");
//! sim.add_module(clk, Counter { out });
//! sim.run_until(SimTime::from_ns(20)); // edges at 0,2,4,...,20 ns
//! assert_eq!(sim.signals().read(out), 11);
//! ```

use crate::calendar::EdgeCalendar;
use crate::clock::{ClockSpec, DomainId};
use crate::module::{EdgeContext, Module};
use crate::signal::{SignalStore, Wire};
use crate::time::SimTime;
use core::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies a module registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(usize);

impl ModuleId {
    /// The raw registration index of this module.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

struct DomainState<V> {
    spec: ClockSpec,
    next_edge: u64,
    modules: Vec<Box<dyn Module<Value = V>>>,
}

/// A multi-clock-domain discrete-event simulator.
///
/// `V` is the value type carried by all wires (the aelite models use a
/// link-word type carrying data plus `valid`/`eop` sideband signals).
///
/// The simulator is single-threaded by design: hardware models share state
/// through wires and (for clock-domain-crossing FIFOs) `Rc<RefCell<_>>`
/// handles, so it is intentionally not `Send`.
pub struct Simulator<V> {
    signals: SignalStore<V>,
    domains: Vec<DomainState<V>>,
    queue: BinaryHeap<Reverse<(SimTime, usize)>>,
    now: SimTime,
    edges_processed: u64,
    /// Reusable scratch holding the domains due at the current instant,
    /// so stepping never allocates per edge.
    due_scratch: Vec<usize>,
}

impl<V: Copy + Default> Simulator<V> {
    /// Creates an empty simulator at time zero.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            signals: SignalStore::new(),
            domains: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            edges_processed: 0,
            due_scratch: Vec::new(),
        }
    }

    /// Registers a clock domain; modules added to it run at its edges.
    pub fn add_domain(&mut self, spec: ClockSpec) -> DomainId {
        let id = DomainId(self.domains.len());
        self.queue.push(Reverse((spec.edge(0), id.0)));
        self.domains.push(DomainState {
            spec,
            next_edge: 0,
            modules: Vec::new(),
        });
        id
    }

    /// The clock specification of `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` does not belong to this simulator.
    #[must_use]
    pub fn domain_spec(&self, domain: DomainId) -> ClockSpec {
        self.domains[domain.0].spec
    }

    /// Allocates a wire carrying `V::default()` until first driven.
    pub fn add_wire(&mut self, name: impl Into<String>) -> Wire<V> {
        self.signals.add_wire(name)
    }

    /// Registers `module` to run on every rising edge of `domain`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced past the domain's
    /// first edge: adding modules mid-flight would make their state lag
    /// their clock.
    pub fn add_module(
        &mut self,
        domain: DomainId,
        module: impl Module<Value = V> + 'static,
    ) -> ModuleId {
        let state = &mut self.domains[domain.0];
        assert!(
            state.next_edge == 0,
            "cannot add module '{}' to {domain} after its clock started",
            module.name()
        );
        let id = ModuleId(state.modules.len());
        state.modules.push(Box::new(module));
        id
    }

    /// The current simulation time (time of the most recent edge).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of clock edges processed so far.
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Read-only access to the wire store, for probing from testbenches.
    #[must_use]
    pub fn signals(&self) -> &SignalStore<V> {
        &self.signals
    }

    /// Mutable access to the wire store, for test setup (`poke`).
    #[must_use]
    pub fn signals_mut(&mut self) -> &mut SignalStore<V> {
        &mut self.signals
    }

    /// Runs all edges with time ≤ `deadline`.
    ///
    /// Returns the number of edges processed. Safe to call repeatedly with
    /// increasing deadlines.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(&Reverse((t, _))) = self.queue.peek() {
            if t > deadline {
                break;
            }
            processed += self.step();
        }
        processed
    }

    /// Processes the single next instant at which any domain has an edge,
    /// running every module due at that instant and committing writes.
    ///
    /// Returns the number of edges (domains) processed, or 0 if no domains
    /// are registered.
    pub fn step(&mut self) -> u64 {
        let Some(&Reverse((t, _))) = self.queue.peek() else {
            return 0;
        };

        // Collect every domain with an edge exactly at `t` into the
        // reusable scratch (no per-step allocation once warm).
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some(&Reverse((ti, d))) = self.queue.peek() {
            if ti != t {
                break;
            }
            self.queue.pop();
            due.push(d);
        }

        self.fire_due(t, &due);

        // Reschedule each due domain for its next edge.
        for &d in &due {
            let state = &self.domains[d];
            self.queue
                .push(Reverse((state.spec.edge(state.next_edge), d)));
        }

        let n = due.len() as u64;
        self.due_scratch = due;
        n
    }

    /// Runs every module of the `due` domains at instant `t`, commits
    /// the buffered wire writes and advances each due domain's cycle
    /// count. Shared by the heap path ([`step`](Self::step)) and the
    /// calendar path — the two must stay behaviourally identical.
    fn fire_due(&mut self, t: SimTime, due: &[usize]) {
        self.now = t;

        // Phase 1: run all modules of all due domains; reads see pre-edge
        // values, writes are buffered in the signal store.
        for &d in due {
            let DomainState {
                spec: _,
                next_edge,
                modules,
            } = &mut self.domains[d];
            let cycle = *next_edge;
            for module in modules.iter_mut() {
                let mut ctx = EdgeContext::new(&mut self.signals, t, cycle);
                module.on_edge(&mut ctx);
            }
        }

        // Phase 2: commit all writes at once (register semantics).
        self.signals.commit();

        for &d in due {
            self.domains[d].next_edge += 1;
        }
        self.edges_processed += due.len() as u64;
    }

    /// Builds the [`EdgeCalendar`] of this simulator's clock domains, or
    /// `None` when the domain set has no tractable hyperperiod (see
    /// [`EdgeCalendar::build`]).
    #[must_use]
    pub fn edge_calendar(&self) -> Option<EdgeCalendar> {
        let specs: Vec<ClockSpec> = self.domains.iter().map(|d| d.spec).collect();
        EdgeCalendar::build(&specs)
    }

    /// Runs all edges with time ≤ `deadline`, discovering instants from
    /// the precomputed `calendar` instead of the binary heap.
    ///
    /// Behaviourally identical to [`run_until`](Self::run_until) — the
    /// calendar enumerates the same instants with the same coincidence
    /// groups in the same domain order — but without any per-edge heap
    /// traffic. The heap is resynchronised on return, so heap-driven and
    /// calendar-driven runs may be freely interleaved.
    ///
    /// Returns the number of edges processed.
    ///
    /// # Panics
    ///
    /// Panics if `calendar` was not built from this simulator's exact
    /// domain set (use [`edge_calendar`](Self::edge_calendar)).
    pub fn run_until_with_calendar(&mut self, deadline: SimTime, calendar: &EdgeCalendar) -> u64 {
        assert!(
            calendar.specs().len() == self.domains.len()
                && calendar
                    .specs()
                    .iter()
                    .zip(&self.domains)
                    .all(|(s, d)| *s == d.spec),
            "calendar does not match this simulator's clock domains"
        );
        if self.domains.is_empty() {
            return 0;
        }

        // The global frontier: the earliest pending edge over all domains.
        let t_next = self
            .domains
            .iter()
            .map(|d| d.spec.edge(d.next_edge))
            .min()
            .expect("at least one domain");
        if t_next > deadline {
            return 0;
        }
        let (mut rev, mut g) = calendar
            .position_of(t_next)
            .expect("every pending edge lies on the calendar");

        let mut due = std::mem::take(&mut self.due_scratch);
        let mut processed = 0u64;
        loop {
            let t = calendar.instant(rev, g);
            if t > deadline {
                break;
            }
            let group = &calendar.groups()[g];
            debug_assert!(group
                .domains()
                .iter()
                .enumerate()
                .all(|(i, &d)| self.domains[d].next_edge == calendar.domain_cycle(rev, g, i)));
            due.clear();
            due.extend_from_slice(group.domains());
            self.fire_due(t, &due);
            processed += due.len() as u64;

            g += 1;
            if g == calendar.groups().len() {
                g = 0;
                rev += 1;
            }
        }
        self.due_scratch = due;

        // Resynchronise the heap so step()/run_until keep working.
        self.queue.clear();
        for (d, state) in self.domains.iter().enumerate() {
            self.queue
                .push(Reverse((state.spec.edge(state.next_edge), d)));
        }
        processed
    }

    /// Runs until `domain` has completed `cycles` edges in total.
    ///
    /// # Panics
    ///
    /// Panics if `domain` does not belong to this simulator.
    pub fn run_domain_cycles(&mut self, domain: DomainId, cycles: u64) {
        while self.domains[domain.0].next_edge < cycles {
            if self.step() == 0 {
                break;
            }
        }
    }
}

impl<V: Copy + Default> Default for Simulator<V> {
    fn default() -> Self {
        Simulator::new()
    }
}

impl<V> core::fmt::Debug for Simulator<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("domains", &self.domains.len())
            .field("edges_processed", &self.edges_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Frequency, SimDuration};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Counter {
        out: Wire<u32>,
    }
    impl Module for Counter {
        type Value = u32;
        fn name(&self) -> &str {
            "counter"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u32>) {
            let v = ctx.read(self.out);
            ctx.write(self.out, v + 1);
        }
    }

    /// Samples a wire at each edge and records what it saw.
    struct Sampler {
        input: Wire<u32>,
        log: Rc<RefCell<Vec<(SimTime, u32)>>>,
    }
    impl Module for Sampler {
        type Value = u32;
        fn name(&self) -> &str {
            "sampler"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u32>) {
            self.log
                .borrow_mut()
                .push((ctx.time(), ctx.read(self.input)));
        }
    }

    #[test]
    fn single_domain_counts_edges() {
        let mut sim: Simulator<u32> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let out = sim.add_wire("count");
        sim.add_module(clk, Counter { out });
        let n = sim.run_until(SimTime::from_ns(10));
        // Edges at 0, 2, 4, 6, 8, 10 ns -> 6 edges.
        assert_eq!(n, 6);
        assert_eq!(sim.signals().read(out), 6);
        assert_eq!(sim.now(), SimTime::from_ns(10));
        assert_eq!(sim.edges_processed(), 6);
    }

    #[test]
    fn coincident_edges_have_register_semantics() {
        // Producer and consumer in two *synchronous* domains: the sampler
        // must always see the value from the previous edge, never the value
        // written at the same instant — regardless of registration order.
        for order_flipped in [false, true] {
            let mut sim: Simulator<u32> = Simulator::new();
            let d1 = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
            let d2 = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
            let wire = sim.add_wire("w");
            let log = Rc::new(RefCell::new(Vec::new()));
            if order_flipped {
                sim.add_module(
                    d2,
                    Sampler {
                        input: wire,
                        log: Rc::clone(&log),
                    },
                );
                sim.add_module(d1, Counter { out: wire });
            } else {
                sim.add_module(d1, Counter { out: wire });
                sim.add_module(
                    d2,
                    Sampler {
                        input: wire,
                        log: Rc::clone(&log),
                    },
                );
            }
            sim.run_until(SimTime::from_ns(6));
            let seen: Vec<u32> = log.borrow().iter().map(|&(_, v)| v).collect();
            // At edge k the sampler sees the counter value committed at
            // edge k-1, i.e. k.
            assert_eq!(seen, vec![0, 1, 2, 3], "flipped={order_flipped}");
        }
    }

    #[test]
    fn phase_shifted_domain_samples_between_edges() {
        let mut sim: Simulator<u32> = Simulator::new();
        let producer = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        // Sampler clock lags by half a period (the paper's worst-case skew).
        let sampler_clk = sim.add_domain(
            ClockSpec::new(Frequency::from_mhz(500)).with_phase(SimDuration::from_ps(1_000)),
        );
        let wire = sim.add_wire("w");
        sim.add_module(producer, Counter { out: wire });
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.add_module(
            sampler_clk,
            Sampler {
                input: wire,
                log: Rc::clone(&log),
            },
        );
        sim.run_until(SimTime::from_ns(5));
        // Sampler edges at 1, 3, 5 ns see counts committed at 0, 2, 4 ns.
        let seen: Vec<u32> = log.borrow().iter().map(|&(_, v)| v).collect();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn run_domain_cycles_stops_at_requested_count() {
        let mut sim: Simulator<u32> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let out = sim.add_wire("count");
        sim.add_module(clk, Counter { out });
        sim.run_domain_cycles(clk, 10);
        assert_eq!(sim.signals().read(out), 10);
    }

    #[test]
    fn plesiochronous_domains_interleave() {
        let mut sim: Simulator<u32> = Simulator::new();
        let slow = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)).with_ppm(-10_000));
        let fast = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)).with_ppm(10_000));
        let a = sim.add_wire("a");
        let b = sim.add_wire("b");
        sim.add_module(slow, Counter { out: a });
        sim.add_module(fast, Counter { out: b });
        sim.run_until(SimTime::from_us(1));
        let slow_count = sim.signals().read(a);
        let fast_count = sim.signals().read(b);
        // 1 us at ~500 MHz is ~500 cycles; the 2% total offset must show.
        assert!(fast_count > slow_count, "{fast_count} vs {slow_count}");
        assert!(slow_count >= 495 && fast_count <= 506);
    }

    #[test]
    #[should_panic(expected = "after its clock started")]
    fn adding_module_after_start_panics() {
        let mut sim: Simulator<u32> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let out = sim.add_wire("count");
        sim.add_module(clk, Counter { out });
        sim.step();
        sim.add_module(clk, Counter { out });
    }

    #[test]
    fn step_with_no_domains_returns_zero() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert_eq!(sim.step(), 0);
        assert_eq!(sim.run_until(SimTime::from_ns(100)), 0);
        assert!(sim.edge_calendar().is_none());
    }

    /// Two counters on phase-shifted clocks, run with the heap and with
    /// the calendar: identical wire values, edge counts and times — and
    /// the two drive modes interleave freely.
    #[test]
    fn calendar_run_matches_heap_run() {
        let build = || {
            let mut sim: Simulator<u32> = Simulator::new();
            let d0 = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
            let d1 = sim.add_domain(
                ClockSpec::new(Frequency::from_mhz(500)).with_phase(SimDuration::from_ps(700)),
            );
            let a = sim.add_wire("a");
            let b = sim.add_wire("b");
            sim.add_module(d0, Counter { out: a });
            sim.add_module(d1, Counter { out: b });
            (sim, a, b)
        };

        let (mut heap_sim, ha, hb) = build();
        heap_sim.run_until(SimTime::from_ns(20));

        let (mut cal_sim, ca, cb) = build();
        let cal = cal_sim.edge_calendar().expect("periodic domains");
        // Interleave: heap to 7 ns, calendar to 13 ns, heap to 20 ns.
        cal_sim.run_until(SimTime::from_ns(7));
        cal_sim.run_until_with_calendar(SimTime::from_ns(13), &cal);
        cal_sim.run_until(SimTime::from_ns(20));

        assert_eq!(heap_sim.now(), cal_sim.now());
        assert_eq!(heap_sim.edges_processed(), cal_sim.edges_processed());
        assert_eq!(heap_sim.signals().read(ha), cal_sim.signals().read(ca));
        assert_eq!(heap_sim.signals().read(hb), cal_sim.signals().read(cb));
    }

    #[test]
    fn calendar_run_before_first_edge_is_a_noop() {
        let mut sim: Simulator<u32> = Simulator::new();
        let clk = sim.add_domain(
            ClockSpec::new(Frequency::from_mhz(500)).with_phase(SimDuration::from_ps(1_500)),
        );
        let out = sim.add_wire("count");
        sim.add_module(clk, Counter { out });
        let cal = sim.edge_calendar().unwrap();
        assert_eq!(
            sim.run_until_with_calendar(SimTime::from_ps(1_000), &cal),
            0
        );
        assert_eq!(
            sim.run_until_with_calendar(SimTime::from_ps(1_500), &cal),
            1
        );
        assert_eq!(sim.signals().read(out), 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_calendar_is_rejected() {
        let mut sim: Simulator<u32> = Simulator::new();
        let _ = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let cal = crate::calendar::EdgeCalendar::build(&[ClockSpec::new(Frequency::from_mhz(250))])
            .unwrap();
        let _ = sim.run_until_with_calendar(SimTime::from_ns(10), &cal);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let sim: Simulator<u32> = Simulator::new();
        assert!(!format!("{sim:?}").is_empty());
    }
}
