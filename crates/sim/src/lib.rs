//! # aelite-sim — multi-clock-domain discrete-event simulation kernel
//!
//! The substrate beneath the aelite NoC models: a small, deterministic,
//! single-threaded simulation kernel for globally-asynchronous
//! locally-synchronous (GALS) hardware.
//!
//! * [`time`] — femtosecond-resolution instants, durations and frequencies.
//! * [`clock`] — clock domains with phase offsets (mesochronous) and ppm
//!   drift (plesiochronous).
//! * [`signal`] — typed wires with register semantics.
//! * [`module`] — the [`module::Module`] trait implemented by every
//!   clocked hardware model.
//! * [`scheduler`] — the [`scheduler::Simulator`] event loop.
//! * [`calendar`] — precomputed hyperperiod edge calendars replacing the
//!   per-edge heap for strictly periodic domain sets.
//! * [`bisync`] — the behavioural bi-synchronous FIFO used for every clock
//!   domain crossing in aelite.
//!
//! # Examples
//!
//! A two-domain system where a producer runs on one clock and is observed
//! on a mesochronous clock (same frequency, different phase):
//!
//! ```
//! use aelite_sim::clock::ClockSpec;
//! use aelite_sim::module::{EdgeContext, Module};
//! use aelite_sim::scheduler::Simulator;
//! use aelite_sim::signal::Wire;
//! use aelite_sim::time::{Frequency, SimDuration, SimTime};
//!
//! struct Producer {
//!     out: Wire<u32>,
//! }
//! impl Module for Producer {
//!     type Value = u32;
//!     fn name(&self) -> &str {
//!         "producer"
//!     }
//!     fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u32>) {
//!         let next = ctx.read(self.out) + 1;
//!         ctx.write(self.out, next);
//!     }
//! }
//!
//! let mut sim: Simulator<u32> = Simulator::new();
//! let f = Frequency::from_mhz(500);
//! let tx = sim.add_domain(ClockSpec::new(f));
//! let _rx = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(777)));
//! let w = sim.add_wire("data");
//! sim.add_module(tx, Producer { out: w });
//! sim.run_until(SimTime::from_ns(100));
//! assert!(sim.signals().read(w) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bisync;
pub mod calendar;
pub mod clock;
pub mod module;
pub mod scheduler;
pub mod signal;
pub mod time;

pub use bisync::{BisyncFifo, SharedBisync};
pub use calendar::{CoincidenceGroup, EdgeCalendar};
pub use clock::{ClockSpec, DomainId};
pub use module::{EdgeContext, Module};
pub use scheduler::{ModuleId, Simulator};
pub use signal::{SignalStore, Wire};
pub use time::{Frequency, SimDuration, SimTime};
