//! Clock domains for globally-asynchronous locally-synchronous simulation.
//!
//! Every sequential component in an aelite model belongs to exactly one
//! [`ClockSpec`]-described domain. Three relationships between domains occur
//! in the paper and are all expressible here:
//!
//! * **synchronous** — identical period and phase;
//! * **mesochronous** — identical period, arbitrary phase (Section V);
//! * **plesiochronous** — nominally equal periods offset by ppm (Section VI).
//!
//! # Examples
//!
//! ```
//! use aelite_sim::clock::ClockSpec;
//! use aelite_sim::time::{Frequency, SimDuration, SimTime};
//!
//! let clk = ClockSpec::new(Frequency::from_mhz(500)).with_phase(SimDuration::from_ps(700));
//! assert_eq!(clk.edge(0), SimTime::from_ps(700));
//! assert_eq!(clk.edge(3), SimTime::from_ps(700 + 3 * 2_000));
//! ```

use crate::time::{Frequency, SimDuration, SimTime};
use core::fmt;

/// Describes one clock domain: nominal frequency, phase offset and optional
/// parts-per-million drift from nominal.
///
/// The *k*-th rising edge occurs at `phase + k * period`, where the period
/// already includes the ppm offset. All sequential state in a domain updates
/// on rising edges; the simulator does not model falling edges because none
/// of the aelite components are negative-edge triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockSpec {
    nominal: Frequency,
    period: SimDuration,
    phase: SimDuration,
    ppm: i64,
}

impl ClockSpec {
    /// A clock at `nominal` frequency with zero phase and zero drift.
    #[must_use]
    pub fn new(nominal: Frequency) -> Self {
        ClockSpec {
            nominal,
            period: nominal.period(),
            phase: SimDuration::ZERO,
            ppm: 0,
        }
    }

    /// Returns this clock shifted by `phase` (first edge at `phase`).
    ///
    /// Mesochronous neighbours are modelled as two clocks with equal
    /// frequency and different phases.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is not smaller than the period: phases are defined
    /// modulo one period, and a larger value almost certainly indicates a
    /// unit mistake in the caller.
    #[must_use]
    pub fn with_phase(mut self, phase: SimDuration) -> Self {
        assert!(
            phase < self.period,
            "phase {phase} must be less than the clock period {}",
            self.period
        );
        self.phase = phase;
        self
    }

    /// Returns this clock with its period offset by `ppm` parts per million
    /// (positive = faster clock, shorter period).
    ///
    /// Plesiochronous elements (Section VI of the paper) are modelled as
    /// clocks with equal nominal frequency and small opposite ppm offsets.
    #[must_use]
    pub fn with_ppm(mut self, ppm: i64) -> Self {
        self.ppm = ppm;
        self.period = self.nominal.offset_ppm(ppm).period();
        self
    }

    /// The nominal (data-sheet) frequency of this clock.
    #[must_use]
    pub fn nominal(&self) -> Frequency {
        self.nominal
    }

    /// The actual period, including any ppm offset.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The phase of the first rising edge.
    #[must_use]
    pub fn phase(&self) -> SimDuration {
        self.phase
    }

    /// The ppm drift applied to the nominal frequency.
    #[must_use]
    pub fn ppm(&self) -> i64 {
        self.ppm
    }

    /// The instant of rising edge number `k` (0-based).
    #[must_use]
    pub fn edge(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.phase + self.period * k
    }

    /// The number of complete cycles elapsed at instant `t`, i.e. the number
    /// of rising edges at or before `t`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aelite_sim::clock::ClockSpec;
    /// use aelite_sim::time::{Frequency, SimTime};
    ///
    /// let clk = ClockSpec::new(Frequency::from_mhz(500));
    /// assert_eq!(clk.edges_at_or_before(SimTime::ZERO), 1); // edge 0 at t=0
    /// assert_eq!(clk.edges_at_or_before(SimTime::from_ps(1_999)), 1);
    /// assert_eq!(clk.edges_at_or_before(SimTime::from_ps(2_000)), 2);
    /// ```
    #[must_use]
    pub fn edges_at_or_before(&self, t: SimTime) -> u64 {
        match t.checked_since(SimTime::ZERO + self.phase) {
            None => 0,
            Some(since) => since / self.period + 1,
        }
    }

    /// The phase difference of `other`'s edges relative to `self`'s edges,
    /// normalised into `[0, period)`.
    ///
    /// Only meaningful for mesochronous pairs (equal periods); returns
    /// `None` when the periods differ.
    #[must_use]
    pub fn skew_to(&self, other: &ClockSpec) -> Option<SimDuration> {
        if self.period != other.period {
            return None;
        }
        let p = self.period.as_fs();
        let diff = (other.phase.as_fs() + p - self.phase.as_fs()) % p;
        Some(SimDuration::from_fs(diff))
    }
}

impl fmt::Display for ClockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (phase {}, {:+} ppm)",
            self.nominal, self.phase, self.ppm
        )
    }
}

/// Identifies a clock domain registered with a
/// [`Simulator`](crate::scheduler::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub(crate) usize);

impl DomainId {
    /// The raw index of this domain in registration order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    #[test]
    fn edges_are_period_apart() {
        let clk = ClockSpec::new(mhz(500));
        assert_eq!(clk.edge(1) - clk.edge(0), clk.period());
        assert_eq!(clk.edge(10) - clk.edge(9), clk.period());
    }

    #[test]
    fn phase_shifts_all_edges() {
        let base = ClockSpec::new(mhz(500));
        let shifted = ClockSpec::new(mhz(500)).with_phase(SimDuration::from_ps(900));
        for k in 0..5 {
            assert_eq!(shifted.edge(k) - base.edge(k), SimDuration::from_ps(900));
        }
    }

    #[test]
    #[should_panic(expected = "less than the clock period")]
    fn phase_must_be_less_than_period() {
        let _ = ClockSpec::new(mhz(500)).with_phase(SimDuration::from_ps(2_000));
    }

    #[test]
    fn ppm_changes_period() {
        let nominal = ClockSpec::new(mhz(500));
        let fast = ClockSpec::new(mhz(500)).with_ppm(10_000); // +1%
        assert!(fast.period() < nominal.period());
        assert_eq!(fast.nominal(), nominal.nominal());
        assert_eq!(fast.ppm(), 10_000);
    }

    #[test]
    fn edges_at_or_before_counts_inclusively() {
        let clk = ClockSpec::new(mhz(500)).with_phase(SimDuration::from_ps(500));
        assert_eq!(clk.edges_at_or_before(SimTime::from_ps(499)), 0);
        assert_eq!(clk.edges_at_or_before(SimTime::from_ps(500)), 1);
        assert_eq!(clk.edges_at_or_before(SimTime::from_ps(2_499)), 1);
        assert_eq!(clk.edges_at_or_before(SimTime::from_ps(2_500)), 2);
    }

    #[test]
    fn skew_between_mesochronous_clocks() {
        let a = ClockSpec::new(mhz(500));
        let b = ClockSpec::new(mhz(500)).with_phase(SimDuration::from_ps(700));
        assert_eq!(a.skew_to(&b), Some(SimDuration::from_ps(700)));
        assert_eq!(b.skew_to(&a), Some(SimDuration::from_ps(1_300)));
        assert_eq!(a.skew_to(&a), Some(SimDuration::ZERO));
    }

    #[test]
    fn skew_is_none_for_plesiochronous_clocks() {
        let a = ClockSpec::new(mhz(500));
        let b = ClockSpec::new(mhz(500)).with_ppm(500);
        assert_eq!(a.skew_to(&b), None);
    }

    #[test]
    fn display_mentions_phase_and_ppm() {
        let c = ClockSpec::new(mhz(500))
            .with_phase(SimDuration::from_ps(10))
            .with_ppm(-5);
        let s = format!("{c}");
        assert!(s.contains("500.000 MHz"), "{s}");
        assert!(s.contains("-5 ppm"), "{s}");
    }
}
