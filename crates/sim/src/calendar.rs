//! Precomputed edge calendars for periodic clock-domain sets.
//!
//! The event-driven [`Simulator`](crate::scheduler::Simulator) discovers
//! every rising edge through a binary heap — fully general, but wasteful
//! when every clock is strictly periodic, as all aelite clock domains
//! are. An [`EdgeCalendar`] exploits that periodicity: the union of all
//! domains' edges repeats with the **hyperperiod** (the least common
//! multiple of the periods), so one precomputed revolution — a sorted
//! list of [`CoincidenceGroup`]s, each holding every domain with an edge
//! at the same instant — replaces per-edge heap traffic forever after.
//!
//! Mesochronous networks are the sweet spot: every domain shares one
//! period, so the hyperperiod *is* that period and the calendar has one
//! entry per distinct phase. Plesiochronous (ppm-offset) domain sets
//! have astronomically long hyperperiods; [`EdgeCalendar::build`]
//! detects that and returns `None`, and callers fall back to the heap.
//!
//! The calendar is consumed two ways:
//!
//! * [`Simulator::run_until_with_calendar`] walks the calendar instead
//!   of the heap — same instants, same coincidence groups, same module
//!   order, bit-for-bit identical results (pinned by
//!   `tests/proptest_calendar.rs`);
//! * the turbo network kernel in `aelite-noc` compiles the calendar
//!   directly into its per-cycle schedule.
//!
//! [`Simulator::run_until_with_calendar`]: crate::scheduler::Simulator::run_until_with_calendar
//!
//! # Examples
//!
//! ```
//! use aelite_sim::calendar::EdgeCalendar;
//! use aelite_sim::clock::ClockSpec;
//! use aelite_sim::time::{Frequency, SimDuration};
//!
//! let f = Frequency::from_mhz(500); // 2000 ps period
//! let specs = [
//!     ClockSpec::new(f),
//!     ClockSpec::new(f).with_phase(SimDuration::from_ps(700)),
//!     ClockSpec::new(f).with_phase(SimDuration::from_ps(700)),
//! ];
//! let cal = EdgeCalendar::build(&specs).expect("periodic and coprime-small");
//! assert_eq!(cal.hyperperiod(), f.period());
//! // Two instants per revolution: phase 0, and phase 700 ps where the
//! // second and third domains coincide.
//! assert_eq!(cal.groups().len(), 2);
//! assert_eq!(cal.groups()[1].domains(), &[1, 2]);
//! ```

use crate::clock::ClockSpec;
use crate::time::{SimDuration, SimTime};
use core::fmt;

/// Hard cap on edges per hyperperiod revolution; beyond this a calendar
/// costs more to build and store than the heap it replaces.
pub const MAX_CALENDAR_EDGES: u64 = 65_536;

/// One instant of the calendar: every domain with a rising edge exactly
/// `offset` after the start of a hyperperiod revolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoincidenceGroup {
    offset: SimDuration,
    /// Domains due at this instant, ascending — the same tie-break order
    /// the scheduler's heap produces for coincident edges.
    domains: Vec<usize>,
    /// Each domain's edge index within one hyperperiod revolution,
    /// parallel to `domains`.
    rev_cycles: Vec<u64>,
}

impl CoincidenceGroup {
    /// Offset of this instant within a hyperperiod revolution.
    #[must_use]
    pub fn offset(&self) -> SimDuration {
        self.offset
    }

    /// Indices of the domains due at this instant, ascending.
    #[must_use]
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// The edge index each domain reaches at this instant within one
    /// revolution (parallel to [`domains`](Self::domains)).
    #[must_use]
    pub fn rev_cycles(&self) -> &[u64] {
        &self.rev_cycles
    }
}

/// A precomputed, repeating schedule of every rising edge of a periodic
/// clock-domain set. See the [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeCalendar {
    specs: Vec<ClockSpec>,
    hyperperiod: SimDuration,
    /// Edges each domain contributes per revolution (`H / period`).
    edges_per_rev: Vec<u64>,
    groups: Vec<CoincidenceGroup>,
}

impl EdgeCalendar {
    /// Builds the calendar for `specs`, or `None` when no finite
    /// calendar is worthwhile: an empty domain set, or a hyperperiod
    /// holding more than [`MAX_CALENDAR_EDGES`] edges (the
    /// plesiochronous case, where ppm offsets make the periods nearly —
    /// but not exactly — equal).
    #[must_use]
    pub fn build(specs: &[ClockSpec]) -> Option<EdgeCalendar> {
        if specs.is_empty() {
            return None;
        }
        let mut hyper: u128 = 1;
        for s in specs {
            let p = u128::from(s.period().as_fs());
            assert!(p > 0, "clock period must be non-zero");
            hyper = lcm_u128(hyper, p);
            if hyper > u128::from(u64::MAX) {
                return None;
            }
        }
        let hyper_fs = u64::try_from(hyper).expect("bounded above");
        let mut total_edges: u64 = 0;
        for s in specs {
            total_edges = total_edges.saturating_add(hyper_fs / s.period().as_fs());
            if total_edges > MAX_CALENDAR_EDGES {
                return None;
            }
        }

        // Enumerate every edge of one revolution as (offset, domain,
        // in-revolution cycle), then sort and merge coincident instants.
        let mut edges: Vec<(u64, usize, u64)> = Vec::with_capacity(total_edges as usize);
        for (d, s) in specs.iter().enumerate() {
            let p = s.period().as_fs();
            let phase = s.phase().as_fs();
            debug_assert!(phase < p, "ClockSpec::with_phase guarantees phase < period");
            for j in 0..hyper_fs / p {
                edges.push((phase + j * p, d, j));
            }
        }
        edges.sort_unstable();

        let mut groups: Vec<CoincidenceGroup> = Vec::new();
        for (offset_fs, d, j) in edges {
            match groups.last_mut() {
                Some(g) if g.offset.as_fs() == offset_fs => {
                    g.domains.push(d);
                    g.rev_cycles.push(j);
                }
                _ => groups.push(CoincidenceGroup {
                    offset: SimDuration::from_fs(offset_fs),
                    domains: vec![d],
                    rev_cycles: vec![j],
                }),
            }
        }

        Some(EdgeCalendar {
            specs: specs.to_vec(),
            hyperperiod: SimDuration::from_fs(hyper_fs),
            edges_per_rev: specs
                .iter()
                .map(|s| hyper_fs / s.period().as_fs())
                .collect(),
            groups,
        })
    }

    /// The clock specifications the calendar was built for, in domain
    /// order.
    #[must_use]
    pub fn specs(&self) -> &[ClockSpec] {
        &self.specs
    }

    /// The hyperperiod: the interval after which the edge pattern
    /// repeats exactly.
    #[must_use]
    pub fn hyperperiod(&self) -> SimDuration {
        self.hyperperiod
    }

    /// The coincidence groups of one revolution, in instant order.
    #[must_use]
    pub fn groups(&self) -> &[CoincidenceGroup] {
        &self.groups
    }

    /// Edges domain `d` contributes per revolution.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn edges_per_rev(&self, d: usize) -> u64 {
        self.edges_per_rev[d]
    }

    /// The absolute instant of group `g` in revolution `rev`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn instant(&self, rev: u64, g: usize) -> SimTime {
        SimTime::ZERO + self.groups[g].offset + self.hyperperiod * rev
    }

    /// The domain-local edge index (cycle count) domain entry `i` of
    /// group `g` reaches in revolution `rev`.
    ///
    /// # Panics
    ///
    /// Panics if `g` or `i` is out of range.
    #[must_use]
    pub fn domain_cycle(&self, rev: u64, g: usize, i: usize) -> u64 {
        let group = &self.groups[g];
        rev * self.edges_per_rev[group.domains[i]] + group.rev_cycles[i]
    }

    /// Locates the calendar position of the instant `t`, i.e. the
    /// `(revolution, group index)` such that
    /// [`instant`](Self::instant)`(rev, g) == t`, or `None` when no
    /// group fires at `t`.
    #[must_use]
    pub fn position_of(&self, t: SimTime) -> Option<(u64, usize)> {
        let t_fs = t.as_fs();
        let h = self.hyperperiod.as_fs();
        let within = t_fs % h;
        let g = self
            .groups
            .iter()
            .position(|grp| grp.offset.as_fs() == within)?;
        Some((t_fs / h, g))
    }
}

impl fmt::Display for EdgeCalendar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calendar: {} domains, {} instants per {} hyperperiod",
            self.specs.len(),
            self.groups.len(),
            self.hyperperiod
        )
    }
}

const fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

const fn lcm_u128(a: u128, b: u128) -> u128 {
    a / gcd_u128(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Frequency;

    fn mhz(m: u64) -> Frequency {
        Frequency::from_mhz(m)
    }

    #[test]
    fn single_domain_calendar_is_one_group() {
        let cal = EdgeCalendar::build(&[ClockSpec::new(mhz(500))]).unwrap();
        assert_eq!(cal.hyperperiod(), mhz(500).period());
        assert_eq!(cal.groups().len(), 1);
        assert_eq!(cal.groups()[0].offset(), SimDuration::ZERO);
        assert_eq!(cal.groups()[0].domains(), &[0]);
        assert_eq!(cal.edges_per_rev(0), 1);
    }

    #[test]
    fn mesochronous_domains_sort_by_phase() {
        let f = mhz(500);
        let specs = [
            ClockSpec::new(f).with_phase(SimDuration::from_ps(900)),
            ClockSpec::new(f),
            ClockSpec::new(f).with_phase(SimDuration::from_ps(250)),
        ];
        let cal = EdgeCalendar::build(&specs).unwrap();
        assert_eq!(cal.groups().len(), 3);
        let offsets: Vec<u64> = cal.groups().iter().map(|g| g.offset().as_fs()).collect();
        assert_eq!(offsets, vec![0, 250_000, 900_000]);
        assert_eq!(cal.groups()[0].domains(), &[1]);
        assert_eq!(cal.groups()[1].domains(), &[2]);
        assert_eq!(cal.groups()[2].domains(), &[0]);
    }

    #[test]
    fn coincident_phases_merge_in_domain_order() {
        let f = mhz(500);
        let p = SimDuration::from_ps(700);
        let specs = [
            ClockSpec::new(f).with_phase(p),
            ClockSpec::new(f),
            ClockSpec::new(f).with_phase(p),
        ];
        let cal = EdgeCalendar::build(&specs).unwrap();
        assert_eq!(cal.groups().len(), 2);
        assert_eq!(cal.groups()[1].domains(), &[0, 2]);
    }

    #[test]
    fn rational_period_ratio_builds_the_lcm() {
        // 500 MHz (2000 ps) and 250 MHz (4000 ps): hyperperiod 4000 ps,
        // with the fast domain contributing two edges per revolution.
        let specs = [ClockSpec::new(mhz(500)), ClockSpec::new(mhz(250))];
        let cal = EdgeCalendar::build(&specs).unwrap();
        assert_eq!(cal.hyperperiod(), SimDuration::from_ps(4_000));
        assert_eq!(cal.edges_per_rev(0), 2);
        assert_eq!(cal.edges_per_rev(1), 1);
        // Instants: 0 (both), 2000 ps (fast only).
        assert_eq!(cal.groups().len(), 2);
        assert_eq!(cal.groups()[0].domains(), &[0, 1]);
        assert_eq!(cal.groups()[1].domains(), &[0]);
        assert_eq!(cal.domain_cycle(3, 1, 0), 3 * 2 + 1);
    }

    #[test]
    fn plesiochronous_ppm_offsets_refuse_a_calendar() {
        // ±10000 ppm periods share almost no common multiple below the
        // edge cap; the calendar must decline rather than explode.
        let specs = [
            ClockSpec::new(mhz(500)).with_ppm(-10_000),
            ClockSpec::new(mhz(500)).with_ppm(9_973),
        ];
        assert!(EdgeCalendar::build(&specs).is_none());
    }

    #[test]
    fn empty_domain_set_has_no_calendar() {
        assert!(EdgeCalendar::build(&[]).is_none());
    }

    #[test]
    fn position_of_locates_revolutions() {
        let f = mhz(500);
        let specs = [
            ClockSpec::new(f),
            ClockSpec::new(f).with_phase(SimDuration::from_ps(700)),
        ];
        let cal = EdgeCalendar::build(&specs).unwrap();
        assert_eq!(cal.position_of(SimTime::ZERO), Some((0, 0)));
        assert_eq!(cal.position_of(SimTime::from_ps(700)), Some((0, 1)));
        assert_eq!(cal.position_of(SimTime::from_ps(2_700)), Some((1, 1)));
        assert_eq!(cal.position_of(SimTime::from_ps(1_000)), None);
        assert_eq!(cal.instant(1, 1), SimTime::from_ps(2_700));
    }

    #[test]
    fn display_summarises() {
        let cal = EdgeCalendar::build(&[ClockSpec::new(mhz(500))]).unwrap();
        let s = cal.to_string();
        assert!(s.contains("1 domains"), "{s}");
    }
}
