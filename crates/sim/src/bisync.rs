//! Behavioural bi-synchronous FIFO — the clock-domain-crossing primitive.
//!
//! The aelite mesochronous link pipeline stage (paper Section V, Fig 3) and
//! the asynchronous wrapper ports (Section VI, Fig 4) are built on
//! bi-synchronous FIFOs in the style of Miro Panades & Greiner \[14\] and
//! Wielage et al. \[18\]: the write port is clocked by a clock *sourced
//! along with the data*, the read port by the receiver's clock, and a word
//! written at time *t* becomes observable at the read port only after a
//! small forwarding delay (1–2 write-clock cycles of synchroniser latency).
//!
//! This model captures exactly the properties the paper's arguments rely on:
//!
//! * words come out in write order (no loss, duplication or reordering);
//! * a word is invisible to the reader until `t + forwarding_delay`;
//! * occupancy never exceeds the configured capacity (the paper sizes the
//!   link FIFO at 4 words so it can never fill — overflow here panics,
//!   because it would falsify that sizing argument).
//!
//! Because writer and reader are different [`Module`](crate::module::Module)
//! instances in different clock domains, the FIFO is shared through the
//! cheap single-threaded handle [`SharedBisync`].
//!
//! # Examples
//!
//! ```
//! use aelite_sim::bisync::BisyncFifo;
//! use aelite_sim::time::{SimDuration, SimTime};
//!
//! let mut fifo = BisyncFifo::new("link", 4, SimDuration::from_ps(3_000));
//! fifo.push(SimTime::ZERO, 7u32);
//! // Not yet visible: the synchroniser needs 3 ns.
//! assert_eq!(fifo.front_visible(SimTime::from_ps(2_999)), None);
//! assert_eq!(fifo.front_visible(SimTime::from_ps(3_000)), Some(&7));
//! assert_eq!(fifo.pop_visible(SimTime::from_ps(3_000)), Some(7));
//! ```

use crate::time::{SimDuration, SimTime};
use core::fmt;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    item: T,
    visible_at: SimTime,
}

/// A behavioural bi-synchronous FIFO.
///
/// See the [module documentation](self) for the modelling contract.
#[derive(Debug, Clone)]
pub struct BisyncFifo<T> {
    name: String,
    capacity: usize,
    forward_delay: SimDuration,
    queue: std::collections::VecDeque<Entry<T>>,
    max_occupancy: usize,
    total_pushed: u64,
}

impl<T> BisyncFifo<T> {
    /// Creates a FIFO with `capacity` words and the given synchroniser
    /// forwarding delay.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: usize, forward_delay: SimDuration) -> Self {
        assert!(capacity > 0, "bi-sync FIFO capacity must be non-zero");
        BisyncFifo {
            name: name.into(),
            capacity,
            forward_delay,
            queue: std::collections::VecDeque::with_capacity(capacity),
            max_occupancy: 0,
            total_pushed: 0,
        }
    }

    /// The diagnostic name given at construction.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The synchroniser forwarding delay.
    #[must_use]
    pub fn forward_delay(&self) -> SimDuration {
        self.forward_delay
    }

    /// Current number of words stored (visible or not).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Highest occupancy ever observed — used by tests to validate the
    /// paper's "4 words is enough to never fill" sizing argument.
    #[must_use]
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total number of words ever pushed.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Whether the FIFO currently holds no words at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Writes `item` at write-clock time `now`.
    ///
    /// # Panics
    ///
    /// Panics on overflow. The aelite link FIFO is sized so that it can
    /// never fill (paper Section V); an overflow therefore indicates a
    /// modelling or allocation bug and must not be silently dropped.
    pub fn push(&mut self, now: SimTime, item: T) {
        assert!(
            self.queue.len() < self.capacity,
            "bi-sync FIFO '{}' overflow (capacity {})",
            self.name,
            self.capacity
        );
        self.queue.push_back(Entry {
            item,
            visible_at: now + self.forward_delay,
        });
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.queue.len());
    }

    /// Writes `item` if space is available, returning `item` back on a full
    /// FIFO instead of panicking. Used by models (such as the best-effort
    /// baseline) where full FIFOs are legitimate back-pressure.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the FIFO is at capacity.
    pub fn try_push(&mut self, now: SimTime, item: T) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            return Err(item);
        }
        self.push(now, item);
        Ok(())
    }

    /// The oldest word, if it has crossed the synchroniser by read-clock
    /// time `now`.
    #[must_use]
    pub fn front_visible(&self, now: SimTime) -> Option<&T> {
        self.queue
            .front()
            .filter(|e| e.visible_at <= now)
            .map(|e| &e.item)
    }

    /// Removes and returns the oldest word if visible at `now`.
    pub fn pop_visible(&mut self, now: SimTime) -> Option<T> {
        if self.queue.front().is_some_and(|e| e.visible_at <= now) {
            self.queue.pop_front().map(|e| e.item)
        } else {
            None
        }
    }

    /// The number of words visible to the reader at `now`.
    #[must_use]
    pub fn visible_len(&self, now: SimTime) -> usize {
        self.queue
            .iter()
            .take_while(|e| e.visible_at <= now)
            .count()
    }
}

impl<T> fmt::Display for BisyncFifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bisync '{}': {}/{} words (max {})",
            self.name,
            self.queue.len(),
            self.capacity,
            self.max_occupancy
        )
    }
}

/// A shared handle to a [`BisyncFifo`] used by the writer-side and
/// reader-side modules of a clock-domain crossing.
///
/// Single-threaded by design (the simulator is single-threaded); cloning the
/// handle is cheap and both clones refer to the same FIFO.
#[derive(Debug)]
pub struct SharedBisync<T>(Rc<RefCell<BisyncFifo<T>>>);

impl<T> SharedBisync<T> {
    /// Wraps `fifo` in a shared handle.
    #[must_use]
    pub fn new(fifo: BisyncFifo<T>) -> Self {
        SharedBisync(Rc::new(RefCell::new(fifo)))
    }

    /// Runs `f` with mutable access to the FIFO.
    pub fn with<R>(&self, f: impl FnOnce(&mut BisyncFifo<T>) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<T> Clone for SharedBisync<T> {
    fn clone(&self) -> Self {
        SharedBisync(Rc::clone(&self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo() -> BisyncFifo<u32> {
        BisyncFifo::new("t", 4, SimDuration::from_ps(2_000))
    }

    #[test]
    fn words_invisible_during_forwarding_delay() {
        let mut f = fifo();
        f.push(SimTime::from_ps(1_000), 1);
        assert_eq!(f.front_visible(SimTime::from_ps(1_000)), None);
        assert_eq!(f.front_visible(SimTime::from_ps(2_999)), None);
        assert_eq!(f.front_visible(SimTime::from_ps(3_000)), Some(&1));
    }

    #[test]
    fn order_is_preserved() {
        let mut f = fifo();
        for (i, t) in [0u64, 100, 200].iter().enumerate() {
            f.push(SimTime::from_ps(*t), i as u32);
        }
        let late = SimTime::from_ps(10_000);
        assert_eq!(f.pop_visible(late), Some(0));
        assert_eq!(f.pop_visible(late), Some(1));
        assert_eq!(f.pop_visible(late), Some(2));
        assert_eq!(f.pop_visible(late), None);
    }

    #[test]
    fn pop_respects_visibility_of_front_only() {
        let mut f = fifo();
        f.push(SimTime::from_ps(0), 1);
        f.push(SimTime::from_ps(1_900), 2);
        let t = SimTime::from_ps(2_000);
        assert_eq!(f.pop_visible(t), Some(1));
        // Second word becomes visible only at 3.9 ns.
        assert_eq!(f.pop_visible(t), None);
        assert_eq!(f.visible_len(SimTime::from_ps(3_900)), 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn push_panics_on_overflow() {
        let mut f = fifo();
        for i in 0..5 {
            f.push(SimTime::ZERO, i);
        }
    }

    #[test]
    fn try_push_returns_item_on_full() {
        let mut f = fifo();
        for i in 0..4 {
            assert!(f.try_push(SimTime::ZERO, i).is_ok());
        }
        assert_eq!(f.try_push(SimTime::ZERO, 99), Err(99));
        assert_eq!(f.occupancy(), 4);
    }

    #[test]
    fn stats_track_pushes_and_high_water_mark() {
        let mut f = fifo();
        f.push(SimTime::ZERO, 1);
        f.push(SimTime::ZERO, 2);
        let _ = f.pop_visible(SimTime::from_ps(5_000));
        f.push(SimTime::from_ps(5_000), 3);
        assert_eq!(f.total_pushed(), 3);
        assert_eq!(f.max_occupancy(), 2);
        assert_eq!(f.occupancy(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = BisyncFifo::<u32>::new("bad", 0, SimDuration::ZERO);
    }

    #[test]
    fn shared_handle_aliases_one_fifo() {
        let h1 = SharedBisync::new(fifo());
        let h2 = h1.clone();
        h1.with(|f| f.push(SimTime::ZERO, 42));
        let v = h2.with(|f| f.pop_visible(SimTime::from_ps(2_000)));
        assert_eq!(v, Some(42));
    }

    #[test]
    fn display_shows_occupancy() {
        let mut f = fifo();
        f.push(SimTime::ZERO, 9);
        let s = format!("{f}");
        assert!(s.contains("1/4"), "{s}");
    }

    #[test]
    fn zero_delay_fifo_is_immediately_visible() {
        let mut f = BisyncFifo::new("sync", 2, SimDuration::ZERO);
        f.push(SimTime::ZERO, 5u8);
        assert_eq!(f.front_visible(SimTime::ZERO), Some(&5));
    }
}
