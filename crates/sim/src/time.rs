//! Simulation time with femtosecond resolution.
//!
//! The aelite NoC mixes clock domains whose phase offsets are arbitrary
//! fractions of a clock period (mesochronous links) and whose periods may
//! differ by parts-per-million (plesiochronous wrappers). Femtosecond
//! integer timestamps represent all of those exactly for any realistic
//! on-chip frequency, with no floating-point drift: a `u64` of femtoseconds
//! covers more than five hours of simulated time.
//!
//! Two newtypes keep absolute instants and spans apart ([C-NEWTYPE]):
//!
//! * [`SimTime`] — an absolute instant since simulation start.
//! * [`SimDuration`] — a span between instants.
//!
//! # Examples
//!
//! ```
//! use aelite_sim::time::{Frequency, SimDuration, SimTime};
//!
//! let f = Frequency::from_mhz(500);
//! assert_eq!(f.period(), SimDuration::from_ps(2_000));
//! let t = SimTime::ZERO + f.period() * 3;
//! assert_eq!(t.as_fs(), 6_000_000);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Femtoseconds per picosecond.
pub const FS_PER_PS: u64 = 1_000;
/// Femtoseconds per nanosecond.
pub const FS_PER_NS: u64 = 1_000_000;
/// Femtoseconds per microsecond.
pub const FS_PER_US: u64 = 1_000_000_000;

/// An absolute simulation instant, measured in femtoseconds from time zero.
///
/// `SimTime` is totally ordered and supports the arithmetic a scheduler
/// needs: adding a [`SimDuration`] yields a later instant, and subtracting
/// two instants yields the span between them.
///
/// # Examples
///
/// ```
/// use aelite_sim::time::{SimDuration, SimTime};
///
/// let a = SimTime::from_ns(10);
/// let b = a + SimDuration::from_ps(500);
/// assert!(b > a);
/// assert_eq!(b - a, SimDuration::from_ps(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        SimTime(fs)
    }

    /// Creates an instant from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps * FS_PER_PS)
    }

    /// Creates an instant from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * FS_PER_NS)
    }

    /// Creates an instant from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * FS_PER_US)
    }

    /// Raw femtosecond count since time zero.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0 / FS_PER_PS
    }

    /// This instant expressed in (possibly fractional) nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    #[must_use]
    pub const fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        if self.0 >= earlier.0 {
            Some(SimDuration(self.0 - earlier.0))
        } else {
            None
        }
    }

    /// Saturating addition of a duration, clamping at [`SimTime::MAX`].
    #[must_use]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, measured in femtoseconds.
///
/// # Examples
///
/// ```
/// use aelite_sim::time::SimDuration;
///
/// let period = SimDuration::from_ps(2_000);
/// assert_eq!(period * 3, SimDuration::from_ns(6));
/// assert_eq!((period * 3) / period, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        SimDuration(fs)
    }

    /// Creates a span from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps * FS_PER_PS)
    }

    /// Creates a span from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * FS_PER_NS)
    }

    /// Raw femtosecond count.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// This span expressed in (possibly fractional) nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// `self` scaled by a rational `num/den`, rounding to nearest femtosecond.
    ///
    /// Used for parts-per-million plesiochronous period offsets where a plain
    /// integer multiply would overflow or truncate.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn scale(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "scale denominator must be non-zero");
        let v = u128::from(self.0) * u128::from(num);
        let scaled = (v + u128::from(den / 2)) / u128::from(den);
        SimDuration(u64::try_from(scaled).expect("scaled duration overflows u64 femtoseconds"))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A clock frequency, stored in kilohertz so that both "500 MHz" and
/// "499.95 MHz" (plesiochronous offsets) are exactly representable.
///
/// # Examples
///
/// ```
/// use aelite_sim::time::{Frequency, SimDuration};
///
/// let f = Frequency::from_mhz(650);
/// assert!((f.as_mhz_f64() - 650.0).abs() < 1e-9);
/// assert_eq!(f.period(), SimDuration::from_fs(1_538_462));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency {
    khz: u64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    #[must_use]
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be non-zero");
        Frequency { khz: mhz * 1_000 }
    }

    /// Creates a frequency from kilohertz.
    ///
    /// # Panics
    ///
    /// Panics if `khz` is zero.
    #[must_use]
    pub const fn from_khz(khz: u64) -> Self {
        assert!(khz > 0, "frequency must be non-zero");
        Frequency { khz }
    }

    /// The frequency in kilohertz.
    #[must_use]
    pub const fn as_khz(self) -> u64 {
        self.khz
    }

    /// The frequency in megahertz as a float (may be fractional).
    #[must_use]
    pub fn as_mhz_f64(self) -> f64 {
        self.khz as f64 / 1_000.0
    }

    /// The clock period, rounded to the nearest femtosecond.
    ///
    /// One femtosecond of rounding corresponds to a frequency error below
    /// one part per million for any on-chip clock, which is far below the
    /// plesiochronous offsets the models care about.
    #[must_use]
    pub fn period(self) -> SimDuration {
        // period_fs = 1e15 fs/s / (khz * 1e3 Hz) = 1e12 / khz
        SimDuration((1_000_000_000_000u64 + self.khz / 2) / self.khz)
    }

    /// A frequency offset by `ppm` parts per million (positive = faster).
    ///
    /// # Examples
    ///
    /// ```
    /// use aelite_sim::time::Frequency;
    ///
    /// let nominal = Frequency::from_mhz(500);
    /// let fast = nominal.offset_ppm(200);
    /// assert!(fast.period() < nominal.period());
    /// ```
    #[must_use]
    pub fn offset_ppm(self, ppm: i64) -> Frequency {
        let delta = (i128::from(self.khz) * i128::from(ppm)) / 1_000_000;
        let khz = i128::from(self.khz) + delta;
        assert!(khz > 0, "ppm offset drove frequency non-positive");
        Frequency { khz: khz as u64 }
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MHz", self.as_mhz_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_constructors_agree() {
        assert_eq!(SimTime::from_ps(1), SimTime::from_fs(1_000));
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(5);
        let d = SimDuration::from_ps(1_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn checked_since_orders_correctly() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_ns(1)));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(a.checked_since(a), Some(SimDuration::ZERO));
    }

    #[test]
    fn duration_scale_rounds_to_nearest() {
        let d = SimDuration::from_fs(1_000_000);
        // +100 ppm
        assert_eq!(
            d.scale(1_000_100, 1_000_000),
            SimDuration::from_fs(1_000_100)
        );
        // A third, rounded.
        assert_eq!(
            SimDuration::from_fs(10).scale(1, 3),
            SimDuration::from_fs(3)
        );
        assert_eq!(
            SimDuration::from_fs(11).scale(1, 3),
            SimDuration::from_fs(4)
        );
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn duration_scale_rejects_zero_denominator() {
        let _ = SimDuration::from_fs(1).scale(1, 0);
    }

    #[test]
    fn frequency_period_is_exact_for_round_numbers() {
        assert_eq!(
            Frequency::from_mhz(500).period(),
            SimDuration::from_ps(2_000)
        );
        assert_eq!(
            Frequency::from_mhz(1_000).period(),
            SimDuration::from_ps(1_000)
        );
        assert_eq!(
            Frequency::from_mhz(250).period(),
            SimDuration::from_ps(4_000)
        );
    }

    #[test]
    fn frequency_period_rounds_irregular_values() {
        // 650 MHz -> 1538461.53... fs, rounds to 1538462.
        assert_eq!(
            Frequency::from_mhz(650).period(),
            SimDuration::from_fs(1_538_462)
        );
    }

    #[test]
    fn ppm_offset_moves_period_the_right_way() {
        let f = Frequency::from_mhz(500);
        assert!(f.offset_ppm(1_000).period() < f.period());
        assert!(f.offset_ppm(-1_000).period() > f.period());
        assert_eq!(f.offset_ppm(0), f);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ns(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_formats_in_ns() {
        assert_eq!(format!("{}", SimTime::from_ps(1_500)), "1.500 ns");
        assert_eq!(format!("{}", SimDuration::from_ps(250)), "0.250 ns");
        assert_eq!(format!("{}", Frequency::from_mhz(500)), "500.000 MHz");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [SimDuration::from_ns(1), SimDuration::from_ns(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_ns(3));
    }
}
