//! Typed wires connecting hardware modules.
//!
//! A [`Wire`] is a handle into a [`SignalStore`]. Wires have register
//! semantics at domain edges: during an edge, every module reads the values
//! committed *before* that instant, and all writes become visible only after
//! every module due at that instant has run. This makes simulation results
//! independent of module registration order, including when edges of
//! different clock domains coincide.
//!
//! Each wire has at most one driver per instant; two writes to the same wire
//! in the same step indicate a wiring bug and panic immediately.

use core::fmt;
use core::marker::PhantomData;

/// A handle to one wire carrying values of type `V`.
///
/// `Wire` is a plain index: copying it is free and it stays valid for the
/// lifetime of the [`SignalStore`] that created it.
pub struct Wire<V> {
    index: usize,
    _marker: PhantomData<fn() -> V>,
}

impl<V> Wire<V> {
    /// The raw index of this wire within its store.
    #[must_use]
    pub fn index(self) -> usize {
        self.index
    }
}

impl<V> Clone for Wire<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for Wire<V> {}

impl<V> PartialEq for Wire<V> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<V> Eq for Wire<V> {}

impl<V> fmt::Debug for Wire<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wire#{}", self.index)
    }
}

/// Storage for all wires of one simulator instance.
///
/// Values must be `Copy + Default`: wires power up holding `V::default()`,
/// which plays the role of an idle/invalid word on a hardware link.
///
/// # Examples
///
/// ```
/// use aelite_sim::signal::SignalStore;
///
/// let mut store: SignalStore<u32> = SignalStore::new();
/// let w = store.add_wire("data");
/// assert_eq!(store.read(w), 0);
/// store.write(w, 7);
/// assert_eq!(store.read(w), 0); // not yet committed
/// store.commit();
/// assert_eq!(store.read(w), 7);
/// ```
#[derive(Debug)]
pub struct SignalStore<V> {
    current: Vec<V>,
    pending: Vec<Option<V>>,
    dirty: Vec<usize>,
    names: Vec<String>,
}

impl<V: Copy + Default> SignalStore<V> {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        SignalStore {
            current: Vec::new(),
            pending: Vec::new(),
            dirty: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Allocates a new wire initialised to `V::default()`.
    ///
    /// The `name` is kept for diagnostics only.
    pub fn add_wire(&mut self, name: impl Into<String>) -> Wire<V> {
        let index = self.current.len();
        self.current.push(V::default());
        self.pending.push(None);
        self.names.push(name.into());
        Wire {
            index,
            _marker: PhantomData,
        }
    }

    /// The number of wires allocated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether no wires have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The diagnostic name of `wire`.
    #[must_use]
    pub fn name(&self, wire: Wire<V>) -> &str {
        &self.names[wire.index]
    }

    /// Reads the committed value of `wire` (the value as of before the
    /// current edge step).
    #[must_use]
    pub fn read(&self, wire: Wire<V>) -> V {
        self.current[wire.index]
    }

    /// Schedules `value` to appear on `wire` after [`commit`](Self::commit).
    ///
    /// # Panics
    ///
    /// Panics if the wire was already written during the current step: a
    /// wire must have a single driver.
    pub fn write(&mut self, wire: Wire<V>, value: V) {
        let slot = &mut self.pending[wire.index];
        assert!(
            slot.is_none(),
            "wire '{}' driven twice in one step",
            self.names[wire.index]
        );
        *slot = Some(value);
        self.dirty.push(wire.index);
    }

    /// Makes all writes from the current step visible to readers.
    pub fn commit(&mut self) {
        for &index in &self.dirty {
            if let Some(v) = self.pending[index].take() {
                self.current[index] = v;
            }
        }
        self.dirty.clear();
    }

    /// Forces a committed value onto a wire, bypassing the two-phase
    /// protocol. Intended for test setup and reset sequences only.
    pub fn poke(&mut self, wire: Wire<V>, value: V) {
        self.current[wire.index] = value;
    }
}

impl<V: Copy + Default> Default for SignalStore<V> {
    fn default() -> Self {
        SignalStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_power_up_default() {
        let mut s: SignalStore<u8> = SignalStore::new();
        let w = s.add_wire("w");
        assert_eq!(s.read(w), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_store_reports_empty() {
        let s: SignalStore<u8> = SignalStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn write_is_invisible_until_commit() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let w = s.add_wire("w");
        s.write(w, 42);
        assert_eq!(s.read(w), 0);
        s.commit();
        assert_eq!(s.read(w), 42);
    }

    #[test]
    fn commit_without_writes_is_noop() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let w = s.add_wire("w");
        s.write(w, 1);
        s.commit();
        s.commit();
        assert_eq!(s.read(w), 1);
    }

    #[test]
    #[should_panic(expected = "driven twice")]
    fn double_drive_panics() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let w = s.add_wire("bus");
        s.write(w, 1);
        s.write(w, 2);
    }

    #[test]
    fn same_wire_may_be_driven_in_successive_steps() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let w = s.add_wire("w");
        s.write(w, 1);
        s.commit();
        s.write(w, 2);
        s.commit();
        assert_eq!(s.read(w), 2);
    }

    #[test]
    fn names_are_preserved() {
        let mut s: SignalStore<u8> = SignalStore::new();
        let w = s.add_wire("router0.out1.data");
        assert_eq!(s.name(w), "router0.out1.data");
    }

    #[test]
    fn wires_are_independent() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let a = s.add_wire("a");
        let b = s.add_wire("b");
        s.write(a, 10);
        s.write(b, 20);
        s.commit();
        assert_eq!(s.read(a), 10);
        assert_eq!(s.read(b), 20);
        assert_ne!(a, b);
    }

    #[test]
    fn poke_bypasses_two_phase() {
        let mut s: SignalStore<u32> = SignalStore::new();
        let w = s.add_wire("w");
        s.poke(w, 9);
        assert_eq!(s.read(w), 9);
    }

    #[test]
    fn wire_debug_shows_index() {
        let mut s: SignalStore<u8> = SignalStore::new();
        let w = s.add_wire("x");
        assert_eq!(format!("{w:?}"), "Wire#0");
    }
}
