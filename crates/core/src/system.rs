//! The end-to-end aelite system: specify → allocate → simulate → verify.
//!
//! [`AeliteSystem`] is the front door of the library: it takes a
//! [`SystemSpec`], runs the allocation flow, independently validates the
//! result, and exposes guaranteed-service queries, simulation and
//! verification — the workflow a user of the paper's design flow follows.

use aelite_alloc::allocate::{AllocError, Allocation, Allocator};
use aelite_alloc::validate::{validate, Violation};

use aelite_analysis::composability::{compare_timelines, ComposabilityResult, Timeline};
use aelite_analysis::service::{verify_service, MeasuredService, ServiceReport};
use aelite_noc::flitsim::{FlitSim, FlitSimConfig, TrafficReport};
use aelite_noc::network::{build_network, CycleNet, NetworkKind};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::{AppId, ConnId};
use aelite_spec::traffic::Bandwidth;
use core::fmt;

/// Why a system could not be designed.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// The NoC configuration is internally inconsistent.
    InvalidConfig(String),
    /// The allocator could not satisfy every contract.
    Allocation(AllocError),
    /// The allocator produced an allocation the independent validator
    /// rejects — an internal error worth surfacing loudly.
    Validation(Vec<Violation>),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DesignError::Allocation(e) => write!(f, "allocation failed: {e}"),
            DesignError::Validation(v) => {
                write!(f, "allocation failed validation ({} violations)", v.len())
            }
        }
    }
}

impl std::error::Error for DesignError {}

impl From<AllocError> for DesignError {
    fn from(e: AllocError) -> Self {
        DesignError::Allocation(e)
    }
}

/// Options for a guaranteed-service simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Simulated duration in clock cycles.
    pub duration_cycles: u64,
    /// Record per-flit delivery timelines (needed for composability).
    pub record_timestamps: bool,
    /// Accepted throughput shortfall fraction for CBR sources.
    pub throughput_tolerance: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            duration_cycles: 300_000,
            record_timestamps: false,
            throughput_tolerance: 0.05,
        }
    }
}

/// A simulation outcome: raw measurements plus the service verdicts.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Raw per-connection measurements.
    pub report: TrafficReport,
    /// Contract/bound verdicts.
    pub service: ServiceReport,
}

/// A fully designed aelite system: a specification plus its validated
/// contention-free allocation.
///
/// # Examples
///
/// ```
/// use aelite_core::system::{AeliteSystem, SimOptions};
/// use aelite_spec::generate::paper_workload;
///
/// let system = AeliteSystem::design(paper_workload(42))?;
/// let outcome = system.simulate(SimOptions {
///     duration_cycles: 60_000,
///     ..SimOptions::default()
/// });
/// assert!(outcome.service.all_ok());
/// # Ok::<(), aelite_core::system::DesignError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AeliteSystem {
    spec: SystemSpec,
    allocation: Allocation,
}

impl AeliteSystem {
    /// Designs a system: validates the configuration, allocates every
    /// connection and independently validates the allocation.
    ///
    /// # Errors
    ///
    /// Returns a [`DesignError`] when the configuration is inconsistent,
    /// a contract cannot be satisfied, or (internal error) the produced
    /// allocation fails validation.
    pub fn design(spec: SystemSpec) -> Result<Self, DesignError> {
        Self::design_with(spec, &Allocator::new())
    }

    /// [`Self::design`] with a custom allocator configuration.
    ///
    /// # Errors
    ///
    /// See [`design`](Self::design).
    pub fn design_with(spec: SystemSpec, allocator: &Allocator) -> Result<Self, DesignError> {
        spec.config()
            .validate()
            .map_err(DesignError::InvalidConfig)?;
        let allocation = allocator.allocate(&spec)?;
        validate(&spec, &allocation).map_err(DesignError::Validation)?;
        Ok(AeliteSystem { spec, allocation })
    }

    /// The underlying specification.
    #[must_use]
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The validated allocation.
    #[must_use]
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The bandwidth guaranteed to `conn` by its reserved slots.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the system.
    #[must_use]
    pub fn guaranteed_bandwidth(&self, conn: ConnId) -> Bandwidth {
        self.allocation.allocated_bandwidth(&self.spec, conn)
    }

    /// The analytical worst-case per-flit latency of `conn`, ns.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the system.
    #[must_use]
    pub fn latency_bound_ns(&self, conn: ConnId) -> f64 {
        self.allocation.worst_case_latency_ns(&self.spec, conn)
    }

    /// Runs the flit-level simulator over the full system.
    #[must_use]
    pub fn simulate(&self, opts: SimOptions) -> SimulationOutcome {
        self.simulate_spec(&self.spec, opts)
    }

    /// Runs the flit-level simulator with only `apps` active, against the
    /// full system's allocation — applications are developed and verified
    /// in isolation (the paper's functional-scalability workflow).
    #[must_use]
    pub fn simulate_apps(&self, apps: &[AppId], opts: SimOptions) -> SimulationOutcome {
        let restricted = self.spec.restricted_to(apps);
        self.simulate_spec(&restricted, opts)
    }

    fn simulate_spec(&self, spec: &SystemSpec, opts: SimOptions) -> SimulationOutcome {
        let report = FlitSim::new(spec, &self.allocation).run(FlitSimConfig {
            duration_cycles: opts.duration_cycles,
            record_timestamps: opts.record_timestamps,
            ..FlitSimConfig::default()
        });
        let measured = measured_services(&report);
        let service = verify_service(
            spec,
            Some(&self.allocation),
            &measured,
            opts.duration_cycles,
            opts.throughput_tolerance,
        );
        SimulationOutcome { report, service }
    }

    /// Verifies composability: every application's delivery timelines are
    /// bit-identical between the full system and each isolated run.
    #[must_use]
    pub fn verify_composability(&self, opts: SimOptions) -> ComposabilityResult {
        let opts = SimOptions {
            record_timestamps: true,
            ..opts
        };
        let full = self.simulate(opts);
        let reference = timelines(&full.report);
        let mut divergent = Vec::new();
        let mut compared = 0;
        for app in self.spec.apps() {
            let isolated = self.simulate_apps(&[app.id], opts);
            let result = compare_timelines(&reference, &timelines(&isolated.report));
            compared += result.compared;
            divergent.extend(result.divergent);
        }
        ComposabilityResult {
            divergent,
            compared,
        }
    }

    /// Builds the cycle-accurate network for this system.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is inconsistent with the configuration's
    /// `link_pipeline_stages` (see [`aelite_noc::network::build_network`]).
    #[must_use]
    pub fn cycle_accurate(&self, kind: NetworkKind, with_traffic: bool) -> CycleNet {
        build_network(&self.spec, &self.allocation, kind, with_traffic)
    }

    /// Reconfigures the live system to `new_spec`: connections that
    /// disappeared are released, new ones allocated into the freed
    /// resources, and — the undisrupted-QoS property of the Æthereal flow
    /// the paper builds on (\[16\]) — **every kept connection's grant is
    /// left untouched**, so its timing is bit-identical across the
    /// reconfiguration.
    ///
    /// Connection ids must be stable across specs: a connection present
    /// in both is "kept" and must have the same endpoints and contract.
    ///
    /// # Errors
    ///
    /// Returns a [`DesignError`] if the new connections cannot be
    /// allocated (the system is left with the removed connections
    /// released and any partially added grants in place — inspect and
    /// release to roll back) or the final allocation fails validation.
    ///
    /// # Panics
    ///
    /// Panics if a kept connection changed its contract or endpoints.
    pub fn reconfigure(&mut self, new_spec: SystemSpec) -> Result<ReconfigReport, DesignError> {
        new_spec
            .config()
            .validate()
            .map_err(DesignError::InvalidConfig)?;
        let old_ids: std::collections::BTreeSet<ConnId> =
            self.spec.connections().iter().map(|c| c.id).collect();
        let new_ids: std::collections::BTreeSet<ConnId> =
            new_spec.connections().iter().map(|c| c.id).collect();
        for &kept in old_ids.intersection(&new_ids) {
            assert_eq!(
                self.spec.connection(kept),
                new_spec.connection(kept),
                "{kept} changed during reconfiguration; release and re-add it instead"
            );
        }
        let released: Vec<ConnId> = old_ids.difference(&new_ids).copied().collect();
        let added: Vec<ConnId> = new_ids.difference(&old_ids).copied().collect();
        for &c in &released {
            aelite_alloc::reconfigure::release(&mut self.allocation, c);
        }
        Allocator::new().extend(&new_spec, &mut self.allocation, &added)?;
        validate(&new_spec, &self.allocation).map_err(DesignError::Validation)?;
        self.spec = new_spec;
        Ok(ReconfigReport { released, added })
    }
}

/// What a [`AeliteSystem::reconfigure`] call changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigReport {
    /// Connections torn down.
    pub released: Vec<ConnId>,
    /// Connections newly allocated.
    pub added: Vec<ConnId>,
}

/// Converts a flit-level report into simulator-independent measurements.
#[must_use]
pub fn measured_services(report: &TrafficReport) -> Vec<MeasuredService> {
    report
        .per_conn
        .iter()
        .map(|s| MeasuredService {
            conn: s.conn,
            bytes: s.bytes,
            min_latency_cycles: if s.flits > 0 { s.min_latency } else { 0 },
            mean_latency_cycles: s.mean_latency().unwrap_or(0.0),
            max_latency_cycles: s.max_latency,
        })
        .collect()
}

/// Extracts delivery timelines (requires the run to have recorded
/// timestamps).
#[must_use]
pub fn timelines(report: &TrafficReport) -> Vec<Timeline> {
    report
        .per_conn
        .iter()
        .map(|s| Timeline {
            conn: s.conn,
            deliveries: s.timestamps.clone(),
        })
        .collect()
}

/// Converts a best-effort report into simulator-independent measurements.
#[must_use]
pub fn measured_services_be(report: &aelite_baseline::BeReport) -> Vec<MeasuredService> {
    report
        .per_conn
        .iter()
        .map(|s| MeasuredService {
            conn: s.conn,
            bytes: s.bytes,
            min_latency_cycles: if s.flits > 0 { s.min_latency } else { 0 },
            mean_latency_cycles: s.mean_latency().unwrap_or(0.0),
            max_latency_cycles: s.max_latency,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::generate::paper_workload;

    fn quick() -> SimOptions {
        SimOptions {
            duration_cycles: 60_000,
            ..SimOptions::default()
        }
    }

    #[test]
    fn paper_system_designs_and_satisfies_contracts() {
        let system = AeliteSystem::design(paper_workload(42)).unwrap();
        let outcome = system.simulate(quick());
        assert!(outcome.service.all_ok());
        assert_eq!(outcome.service.verdicts.len(), 200);
    }

    #[test]
    fn guarantees_exceed_contracts() {
        let system = AeliteSystem::design(paper_workload(1)).unwrap();
        for c in system.spec().connections() {
            assert!(
                system.guaranteed_bandwidth(c.id).bytes_per_sec() >= c.bandwidth.bytes_per_sec()
            );
            assert!(system.latency_bound_ns(c.id) <= c.max_latency_ns as f64);
        }
    }

    #[test]
    fn composability_holds_for_paper_system() {
        let system = AeliteSystem::design(paper_workload(7)).unwrap();
        let result = system.verify_composability(SimOptions {
            duration_cycles: 30_000,
            ..SimOptions::default()
        });
        assert!(result.is_composable(), "{result}");
        assert!(result.compared >= 200);
    }

    #[test]
    fn isolated_app_meets_contracts_alone() {
        let system = AeliteSystem::design(paper_workload(13)).unwrap();
        let outcome = system.simulate_apps(&[AppId::new(2)], quick());
        assert!(outcome.service.all_ok());
        assert_eq!(outcome.service.verdicts.len(), 50);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let spec = paper_workload(1);
        let bad = spec.at_frequency(0);
        match AeliteSystem::design(bad) {
            Err(DesignError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_spec_reports_allocation_error() {
        // Halving the frequency halves slot bandwidth: the same workload
        // no longer fits.
        let spec = paper_workload(42).at_frequency(120);
        match AeliteSystem::design(spec) {
            Err(DesignError::Allocation(_)) => {}
            other => panic!("expected Allocation error, got {other:?}"),
        }
    }

    #[test]
    fn design_error_display() {
        let e = DesignError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn reconfiguration_preserves_kept_timing_exactly() {
        // Swap application 2 out (and back in, standing in for a new use
        // case): the remaining applications' delivery timelines must be
        // bit-identical before and after — undisrupted QoS.
        let mut system = AeliteSystem::design(paper_workload(42)).unwrap();
        let opts = SimOptions {
            duration_cycles: 30_000,
            record_timestamps: true,
            ..SimOptions::default()
        };
        let kept_apps = [AppId::new(0), AppId::new(1), AppId::new(3)];
        let before = system.simulate_apps(&kept_apps, opts);

        let without_app2 = system.spec().restricted_to(&kept_apps);
        let full = system.spec().clone();
        let report = system.reconfigure(without_app2).unwrap();
        assert_eq!(report.released.len(), 50);
        assert!(report.added.is_empty());
        let during = system.simulate(opts);

        let report = system.reconfigure(full).unwrap();
        assert_eq!(report.added.len(), 50);
        let after = system.simulate_apps(&kept_apps, opts);

        for (b, d) in before.report.per_conn.iter().zip(&during.report.per_conn) {
            assert_eq!(b.timestamps, d.timestamps, "{} moved during", b.conn);
        }
        for (b, a) in before.report.per_conn.iter().zip(&after.report.per_conn) {
            assert_eq!(b.timestamps, a.timestamps, "{} moved after", b.conn);
        }
        // And the re-added application still meets its contracts.
        let app2 = system.simulate_apps(
            &[AppId::new(2)],
            SimOptions {
                duration_cycles: 30_000,
                ..SimOptions::default()
            },
        );
        assert!(app2.service.all_ok());
    }

    #[test]
    fn same_spec_reconfiguration_is_a_noop() {
        let mut system = AeliteSystem::design(paper_workload(1)).unwrap();
        let same = system.spec().clone();
        let report = system.reconfigure(same).unwrap();
        assert!(report.released.is_empty() && report.added.is_empty());
    }
}
