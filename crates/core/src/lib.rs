//! # aelite-core — the aelite NoC, end to end
//!
//! The crate a downstream user adopts: specify a platform and its
//! applications ([`aelite_spec`]), design the system (allocation +
//! validation), query the guaranteed services, simulate at flit level or
//! cycle level, and verify contracts and composability.
//!
//! ```
//! use aelite_core::{AeliteSystem, SimOptions};
//! use aelite_spec::generate::paper_workload;
//!
//! // The paper's Section VII platform: 4x3 mesh, 70 IPs, 200 connections.
//! let system = AeliteSystem::design(paper_workload(42))?;
//!
//! // Analytical guarantees, before any simulation.
//! let c0 = system.spec().connections()[0].id;
//! assert!(system.latency_bound_ns(c0) > 0.0);
//!
//! // Simulated behaviour honours every contract.
//! let outcome = system.simulate(SimOptions {
//!     duration_cycles: 60_000,
//!     ..SimOptions::default()
//! });
//! assert!(outcome.service.all_ok());
//! # Ok::<(), aelite_core::DesignError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod system;

pub use cost::{estimate_cost, sleep_mode_saving_mw, SystemCost};
pub use system::{
    measured_services, measured_services_be, timelines, AeliteSystem, DesignError, ReconfigReport,
    SimOptions, SimulationOutcome,
};

// Re-export the component crates under one roof for convenience.
pub use aelite_alloc as alloc;
pub use aelite_analysis as analysis;
pub use aelite_baseline as baseline;
pub use aelite_dataflow as dataflow;
pub use aelite_noc as noc;
pub use aelite_sim as sim;
pub use aelite_spec as spec;
pub use aelite_synth as synth;
