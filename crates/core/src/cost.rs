//! Whole-system silicon cost estimation.
//!
//! Combines the synthesis models over the *actual* designed system:
//! per-router areas from the real arities in the topology, link pipeline
//! stages when the configuration is mesochronous, and NI areas from the
//! real number of connections terminating at each NI. The totals feed
//! cost comparisons like the paper's Section VII discussion ("the cost of
//! the router network is roughly 5 times as high").

use crate::system::AeliteSystem;
use aelite_spec::ids::Port;
use aelite_synth::components::{link_stage_area_um2, ni_area_um2, FifoKind};
use aelite_synth::power::{component_power, router_power, SleepMode};
use aelite_synth::router::{synthesize, RouterParams};
use core::fmt;

/// A whole-system cost estimate (cell area, 90 nm, pre-layout).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemCost {
    /// All routers.
    pub routers_um2: f64,
    /// All mesochronous link pipeline stages (zero for synchronous).
    pub link_stages_um2: f64,
    /// All network interfaces (buffers dominate).
    pub nis_um2: f64,
    /// Estimated NoC power at the operating point, mW (always-on clocks).
    pub power_mw: f64,
}

impl SystemCost {
    /// Total cell area in µm².
    #[must_use]
    pub fn total_um2(&self) -> f64 {
        self.routers_um2 + self.link_stages_um2 + self.nis_um2
    }

    /// Total cell area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }
}

impl fmt::Display for SystemCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routers {:.0} + links {:.0} + NIs {:.0} = {:.3} mm2, ~{:.0} mW",
            self.routers_um2,
            self.link_stages_um2,
            self.nis_um2,
            self.total_mm2(),
            self.power_mw
        )
    }
}

/// Estimates the silicon cost of a designed system.
///
/// Routers are synthesised at the configured operating frequency with
/// their real arities; NI areas use the per-NI connection counts of the
/// specification; link stages are included per `link_pipeline_stages`.
/// Power uses the measured per-link slot occupancy of the allocation.
#[must_use]
pub fn estimate_cost(system: &AeliteSystem, fifo: FifoKind) -> SystemCost {
    let spec = system.spec();
    let cfg = spec.config();
    let topo = spec.topology();
    let f_mhz = cfg.frequency_mhz as f64;

    let mut routers_um2 = 0.0;
    let mut power_mw = 0.0;
    for r in topo.routers() {
        let arity = topo.arity(r) as u32;
        let p = RouterParams {
            arity_in: arity,
            arity_out: arity,
            width_bits: cfg.data_width_bits,
        };
        let area = synthesize(&p, f_mhz).area_um2;
        routers_um2 += area;
        // Mean output-link occupancy drives data-path power.
        let arity_f = f64::from(arity);
        let mut util = 0.0;
        for port in 0..arity {
            if let Some(link) = topo.out_link(r, Port(port as u8)) {
                util += system.allocation().link_table(link).utilisation() / arity_f;
            }
        }
        power_mw += router_power(area, f_mhz, util.min(1.0), SleepMode::AlwaysOn).total_mw();
    }

    let link_stages_um2 = if cfg.link_pipeline_stages > 0 {
        f64::from(cfg.link_pipeline_stages)
            * topo.link_count() as f64
            * link_stage_area_um2(fifo, cfg.data_width_bits)
    } else {
        0.0
    };

    let mut nis_um2 = 0.0;
    for ni in topo.nis() {
        let conns = spec
            .connections()
            .iter()
            .filter(|c| spec.ip_ni(c.src) == ni || spec.ip_ni(c.dst) == ni)
            .count() as u32;
        if conns > 0 {
            let area = ni_area_um2(
                conns,
                cfg.ni_buffer_words,
                cfg.data_width_bits,
                cfg.slot_table_size,
            );
            nis_um2 += area;
            power_mw += component_power(area, f_mhz, 0.2).total_mw();
        }
    }

    SystemCost {
        routers_um2,
        link_stages_um2,
        nis_um2,
        power_mw,
    }
}

/// The power saved by the paper's future-work sleep modes, at per-port
/// gating granularity (see the A1 ablation), in milliwatts.
#[must_use]
pub fn sleep_mode_saving_mw(system: &AeliteSystem) -> f64 {
    let spec = system.spec();
    let cfg = spec.config();
    let topo = spec.topology();
    let f_mhz = cfg.frequency_mhz as f64;
    let mut saving = 0.0;
    for r in topo.routers() {
        let arity = topo.arity(r) as u32;
        let p = RouterParams {
            arity_in: arity,
            arity_out: arity,
            width_bits: cfg.data_width_bits,
        };
        let area = synthesize(&p, f_mhz).area_um2;
        let port_area = area / f64::from(arity);
        for port in 0..arity {
            if let Some(link) = topo.out_link(r, Port(port as u8)) {
                let util = system.allocation().link_table(link).utilisation();
                let on = router_power(port_area, f_mhz, util, SleepMode::AlwaysOn);
                let gated = router_power(
                    port_area,
                    f_mhz,
                    util,
                    SleepMode::ClockGated {
                        wake_overhead: 0.05,
                    },
                );
                saving += on.total_mw() - gated.total_mw();
            }
        }
    }
    saving
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_core_test_helpers::paper_system;

    mod aelite_core_test_helpers {
        use crate::system::AeliteSystem;
        use aelite_spec::generate::paper_workload;

        pub fn paper_system() -> AeliteSystem {
            AeliteSystem::design(paper_workload(42)).expect("designs")
        }
    }

    #[test]
    fn paper_platform_cost_is_plausible() {
        let system = paper_system();
        let cost = estimate_cost(&system, FifoKind::Custom);
        // 12 routers of ~15-25 kum2 plus 48 NIs: NIs dominate — the
        // Æthereal-family cost structure.
        assert!(cost.routers_um2 > 150_000.0 && cost.routers_um2 < 400_000.0);
        // NIs dominate by a wide margin (48 NIs of ~0.13 mm² — consistent
        // with published Æthereal NI figures).
        assert!(cost.nis_um2 > 10.0 * cost.routers_um2, "{cost}");
        assert_eq!(cost.link_stages_um2, 0.0, "synchronous config");
        assert!(cost.total_mm2() > 1.0 && cost.total_mm2() < 12.0, "{cost}");
        assert!(cost.power_mw > 100.0 && cost.power_mw < 10_000.0);
    }

    #[test]
    fn mesochronous_config_adds_link_stage_area() {
        // Same platform, mesochronous configuration.
        let spec = aelite_spec::generate::random_workload(
            aelite_spec::topology::Topology::mesh(2, 2, 1),
            aelite_spec::config::NocConfig::paper_mesochronous(),
            aelite_spec::generate::WorkloadParams {
                apps: 1,
                connections: 4,
                ips: 4,
                bw_min_mb: 5,
                bw_max_mb: 50,
                lat_min_ns: 200,
                lat_max_ns: 900,
                message_bytes: 16,
                ni_load_cap: 0.5,
            },
            3,
        );
        let system = AeliteSystem::design(spec).expect("designs");
        let cost = estimate_cost(&system, FifoKind::Custom);
        assert!(cost.link_stages_um2 > 0.0, "{cost}");
        // 24 links x ~2.5 kum2.
        assert!(cost.link_stages_um2 > 20_000.0);
    }

    #[test]
    fn sleep_saving_positive_on_paper_platform() {
        let system = paper_system();
        let saving = sleep_mode_saving_mw(&system);
        assert!(saving > 10.0, "saving {saving} mW");
        let cost = estimate_cost(&system, FifoKind::Custom);
        assert!(saving < cost.power_mw);
    }

    #[test]
    fn display_summarises_cost() {
        let system = paper_system();
        let text = estimate_cost(&system, FifoKind::Custom).to_string();
        assert!(text.contains("mm2") && text.contains("mW"), "{text}");
    }
}
