//! Experiment F6a — regenerates **Fig 6(a)**: total cell area and maximum
//! frequency for router arities 2–7 at 32-bit width, synthesised for
//! maximum frequency.
//!
//! Paper shape: area grows roughly linearly with arity (despite the
//! multiplexer tree); maximum frequency declines with arity.

use aelite_bench::{check, header, row};
use aelite_synth::router::{router_max_frequency_mhz, synthesize_max, RouterParams};

fn main() {
    header(
        "Fig 6(a): arity sweep (32-bit, max-frequency synthesis, 90 nm)",
        &["arity", "cell area (um2)", "max frequency (MHz)"],
    );
    let mut areas = Vec::new();
    let mut freqs = Vec::new();
    for arity in 2..=7u32 {
        let p = RouterParams::symmetric(arity, 32);
        let r = synthesize_max(&p);
        let f = router_max_frequency_mhz(&p);
        areas.push(r.area_um2);
        freqs.push(f);
        row(&[
            format!("{arity}"),
            format!("{:.0}", r.area_um2),
            format!("{f:.0}"),
        ]);
    }

    check(
        "area increases with arity",
        areas.windows(2).all(|w| w[1] > w[0]),
        format!("{:.0} .. {:.0} um2", areas[0], areas[5]),
    );
    // "roughly linearly": successive increments never double.
    let roughly_linear = areas
        .windows(3)
        .all(|w| (w[2] - w[1]) < 1.9 * (w[1] - w[0]));
    check(
        "area grows roughly linearly despite the mux tree",
        roughly_linear,
        format!(
            "increments: {:?}",
            areas
                .windows(2)
                .map(|w| format!("{:.0}", w[1] - w[0]))
                .collect::<Vec<_>>()
        ),
    );
    check(
        "maximum frequency declines with arity",
        freqs.windows(2).all(|w| w[1] <= w[0]),
        format!(
            "{:.0} MHz (arity 2) .. {:.0} MHz (arity 7)",
            freqs[0], freqs[5]
        ),
    );
    check(
        "frequency range matches the figure's axis (~850-1300 MHz)",
        freqs[0] > 1_150.0 && freqs[5] > 750.0,
        format!("{:.0} / {:.0} MHz", freqs[0], freqs[5]),
    );
    println!("\nfig6a_arity_sweep: all reproduction checks passed");
}
