//! Experiment P3 — simulator throughput trajectory (not a paper
//! artefact).
//!
//! Times the cycle-accurate simulation of the paper's Section VII
//! platform and a scaled 4×4 mesh, event engine against turbo kernel,
//! in both clocking organisations:
//!
//! * `event_*` — `build_network` + the event-driven
//!   `aelite_sim::scheduler::Simulator` (binary-heap edge discovery,
//!   `dyn Module` dispatch), the golden reference;
//! * `turbo_*` — `build_turbo`'s compiled flit-synchronous kernel
//!   (static network timing, flat per-connection state, slot-grained
//!   stepping).
//!
//! `examples/bench_sim.rs` runs the same matrix outside criterion,
//! asserts delivery-log equivalence, and records the numbers in
//! `BENCH_SIM.json`.

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::turbo::build_turbo;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// (name, spec, kind, simulated cycles) — one row per engine matrix
/// cell; durations keep the event engine's criterion samples short.
fn workloads() -> Vec<(&'static str, SystemSpec, NetworkKind, u64)> {
    let meso = NetworkKind::Mesochronous { phase_seed: 7 };
    vec![
        (
            "paper_sync",
            paper_workload(42),
            NetworkKind::Synchronous,
            10_000,
        ),
        (
            "paper_meso",
            paper_workload(42).with_link_pipeline_stages(1, 1),
            meso,
            4_000,
        ),
        (
            "mesh4x4_sync",
            scaled_workload(4, 4, 4, 500, 1),
            NetworkKind::Synchronous,
            4_000,
        ),
        (
            "mesh4x4_meso",
            scaled_workload(4, 4, 4, 500, 1).with_link_pipeline_stages(1, 2),
            meso,
            2_000,
        ),
    ]
}

fn bench_event(c: &mut Criterion) {
    for (name, spec, kind, cycles) in workloads() {
        let alloc = allocate(&spec).expect("allocates");
        c.bench_function(&format!("event_{name}"), |b| {
            b.iter(|| {
                let mut net = build_network(black_box(&spec), &alloc, kind, true);
                net.run_cycles(cycles);
                net
            });
        });
    }
}

fn bench_turbo(c: &mut Criterion) {
    for (name, spec, kind, cycles) in workloads() {
        let alloc = allocate(&spec).expect("allocates");
        c.bench_function(&format!("turbo_{name}"), |b| {
            b.iter(|| {
                let mut net = build_turbo(black_box(&spec), &alloc, kind, true);
                net.run_cycles(cycles);
                net
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_event, bench_turbo
}
criterion_main!(benches);
