//! Experiment W1 — Section VI behaviour of the asynchronous wrapper:
//! a plesiochronous aelite NoC runs at the rate of its slowest element,
//! never deadlocks thanks to reset tokens, and the measured rate matches
//! the dataflow-model prediction (the paper's footnote-1 analysis).

use aelite_bench::{check, header, row};
use aelite_dataflow::models::{predicted_flit_rate_per_us, wrapper_chain};
use aelite_noc::phit::{LinkWord, RouteBits};
use aelite_noc::wrapper::{token_channel, token_delivery_log, token_queue, AsyncNi, AsyncRouter};
use aelite_sim::clock::ClockSpec;
use aelite_sim::scheduler::Simulator;
use aelite_sim::time::{Frequency, SimDuration, SimTime};
use aelite_spec::ids::{ConnId, Port};

/// Builds NI -> router -> NI with the given ppm offsets and measures the
/// delivered-flit rate over `run_us` microseconds, with NI0 owning every
/// slot (saturating).
fn measure_rate(ppm: [i64; 3], run_us: u64) -> f64 {
    let f = Frequency::from_mhz(500);
    let lat = SimDuration::from_ps(500);
    let mut sim: Simulator<LinkWord> = Simulator::new();
    let d_ni0 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[0]));
    let d_r = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[1]));
    let d_ni1 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[2]));

    let ni0_r = token_channel("ni0->r", 2, lat, 1);
    let r_ni0 = token_channel("r->ni0", 2, lat, 1);
    let ni1_r = token_channel("ni1->r", 2, lat, 1);
    let r_ni1 = token_channel("r->ni1", 2, lat, 1);

    let q = token_queue();
    // Enough flits to saturate the whole run.
    for i in 0..(run_us * 200) {
        q.borrow_mut().push_back([
            LinkWord::head(RouteBits::from_ports(&[Port(1)]), ConnId::new(0)),
            LinkWord::data(i, false),
            LinkWord::data(i, true),
        ]);
    }
    let log = token_delivery_log();
    sim.add_module(
        d_ni0,
        AsyncNi::new(
            "ni0",
            ni0_r.clone(),
            r_ni0.clone(),
            3,
            1, // one-slot table: every firing may inject
            &[vec![0]],
            vec![std::rc::Rc::clone(&q)],
            token_delivery_log(),
        ),
    );
    sim.add_module(
        d_ni1,
        AsyncNi::new(
            "ni1",
            ni1_r.clone(),
            r_ni1.clone(),
            3,
            1,
            &[vec![]],
            vec![token_queue()],
            std::rc::Rc::clone(&log),
        ),
    );
    sim.add_module(
        d_r,
        AsyncRouter::new("r", vec![ni0_r, ni1_r], vec![r_ni0, r_ni1], 3),
    );
    sim.run_until(SimTime::from_us(run_us));
    let log = log.borrow();
    if log.len() < 2 {
        return 0.0;
    }
    // Steady-state rate from the middle of the run.
    let a = &log[log.len() / 4];
    let b = &log[log.len() - 1];
    let flits = (log.len() - 1 - log.len() / 4) as f64;
    flits / (b.time - a.time).as_ns_f64() * 1_000.0
}

fn main() {
    header(
        "wrapper rate vs slowest element (500 MHz nominal, token-level)",
        &[
            "ppm offsets [ni0, r, ni1]",
            "measured (flits/us)",
            "dataflow model",
            "error",
        ],
    );
    let cases: [[i64; 3]; 4] = [
        [0, 0, 0],
        [-20_000, 0, 0],           // NI0 2% slow
        [0, -50_000, 1_000],       // router 5% slow
        [10_000, 20_000, -30_000], // NI1 3% slow
    ];
    for ppm in cases {
        let measured = measure_rate(ppm, 40);
        let freqs: Vec<f64> = ppm
            .iter()
            .map(|&p| 500.0 * (1.0 + p as f64 / 1e6))
            .collect();
        let model = wrapper_chain(&freqs, 3, 2);
        let predicted = predicted_flit_rate_per_us(&model);
        let err = (measured - predicted).abs() / predicted;
        row(&[
            format!("{ppm:?}"),
            format!("{measured:.2}"),
            format!("{predicted:.2}"),
            format!("{:.1}%", err * 100.0),
        ]);
        check(
            &format!("rate tracks slowest element for {ppm:?}"),
            err < 0.05,
            format!("measured {measured:.2} vs predicted {predicted:.2} flits/us"),
        );
    }
    println!("\nw1_wrapper_rate: all reproduction checks passed");
}
