//! Experiment F5 — regenerates **Fig 5**: cell area vs target frequency
//! for the arity-5, 32-bit aelite router (90 nm, pre-layout).
//!
//! Paper shape to reproduce: area < 0.015 mm² up to 650 MHz, a knee after
//! ~750 MHz, saturation around 875 MHz at ~17.9 kµm².

use aelite_bench::{check, header, row};
use aelite_synth::router::{router_max_frequency_mhz, synthesize, RouterParams};

fn main() {
    let p = RouterParams::paper_reference();
    header(
        "Fig 5: frequency/area trade-off (arity-5, 32-bit, 90 nm)",
        &["target (MHz)", "achieved (MHz)", "cell area (um2)", "met"],
    );
    let mut series = Vec::new();
    for target in (500..=900).step_by(25) {
        let r = synthesize(&p, f64::from(target));
        series.push((target, r));
        row(&[
            format!("{target}"),
            format!("{:.0}", r.achieved_mhz),
            format!("{:.0}", r.area_um2),
            format!("{}", r.met_target),
        ]);
    }

    // Paper-vs-measured checks.
    let at = |mhz: u32| {
        series
            .iter()
            .find(|(t, _)| *t == mhz)
            .map(|(_, r)| *r)
            .expect("swept")
    };
    check(
        "area < 0.015 mm2 up to 650 MHz (paper: 'less than 0.015 mm2')",
        (500..=650).step_by(25).all(|f| at(f).area_um2 < 15_000.0),
        format!("650 MHz -> {:.0} um2", at(650).area_um2),
    );
    let fmax = router_max_frequency_mhz(&p);
    check(
        "saturation near 875 MHz (paper: 'saturates around 875 MHz')",
        (860.0..=890.0).contains(&fmax),
        format!("f_max = {fmax:.0} MHz"),
    );
    let steep = at(850).area_um2 - at(800).area_um2;
    let flat = at(700).area_um2 - at(650).area_um2;
    check(
        "area grows steeply after 750 MHz (paper: 'grows steeply after 750 MHz')",
        steep > 3.0 * flat.max(1.0),
        format!("slope 800-850: {steep:.0} um2 vs 650-700: {flat:.0} um2"),
    );
    check(
        "saturated area ~17.9 kum2",
        (17_000.0..18_500.0).contains(&at(900).area_um2),
        format!("{:.0} um2", at(900).area_um2),
    );
    println!("\nfig5_freq_area: all reproduction checks passed");
}
