//! Experiment A1 — ablations of the design choices `DESIGN.md` calls out,
//! plus the paper's sleep-mode future work (Section VI-A).
//!
//! Not a paper artefact: these quantify *why* the allocator and the
//! configuration look the way they do, over 8 workload seeds.

use aelite_alloc::allocate::Allocator;
use aelite_bench::{check, header, row};
use aelite_spec::generate::paper_workload;
use aelite_spec::ids::Port;
use aelite_synth::power::{router_power, SleepMode};
use aelite_synth::router::{synthesize, RouterParams};

const SEEDS: [u64; 8] = [1, 7, 13, 21, 42, 99, 123, 2026];

fn success_count(allocator: &Allocator) -> (usize, f64) {
    let mut ok = 0;
    let mut peak_sum = 0.0;
    for &seed in &SEEDS {
        let spec = paper_workload(seed);
        if let Ok(alloc) = allocator.allocate(&spec) {
            ok += 1;
            peak_sum += alloc.peak_utilisation();
        }
    }
    (ok, if ok > 0 { peak_sum / ok as f64 } else { 0.0 })
}

fn main() {
    // ---- Allocator ablations -------------------------------------------
    header(
        "allocator ablations (paper workload, 8 seeds)",
        &["variant", "seeds allocated", "mean peak link utilisation"],
    );
    let full = Allocator::new();
    let cases: [(&str, Allocator); 5] = [
        ("full allocator (12 paths, latency-aware, 4 salts)", full),
        (
            "no latency-aware slots",
            Allocator {
                latency_aware: false,
                ..full
            },
        ),
        (
            "2 candidate paths",
            Allocator {
                max_paths: 2,
                ..full
            },
        ),
        (
            "single phase salt",
            Allocator {
                phase_salts: &[13],
                ..full
            },
        ),
        (
            "4 candidate paths",
            Allocator {
                max_paths: 4,
                ..full
            },
        ),
    ];
    let mut results = Vec::new();
    for (name, a) in &cases {
        let (ok, peak) = success_count(a);
        row(&[(*name).to_string(), format!("{ok}/8"), format!("{peak:.2}")]);
        results.push((*name, ok));
    }
    check(
        "full allocator allocates every seed",
        results[0].1 == 8,
        format!("{}/8", results[0].1),
    );
    // Note: without latency-aware slot addition, grants meet bandwidth but
    // the validator rejects missed deadlines, so allocate() fails.
    check(
        "latency-aware slot addition is load-bearing",
        results[1].1 < results[0].1,
        format!("{}/8 without it", results[1].1),
    );
    check(
        "path diversity matters",
        results[2].1 <= results[0].1,
        format!("{}/8 with 2 paths", results[2].1),
    );

    // ---- Sleep-mode power (the paper's future work) ---------------------
    // The TDM schedule is static, so gating schedules are known at design
    // time. Granularity matters: on a busy NoC *some* port is active in
    // nearly every slot, so whole-router gating saves almost nothing —
    // per-port gating is where the savings are. Both are quantified from
    // the allocated paper workload (seed 42).
    header(
        "NoC clock power at 500 MHz under sleep modes (12 routers, seed 42)",
        &["policy", "power (mW)", "saving vs always-on"],
    );
    let area = synthesize(&RouterParams::paper_reference(), 500.0).area_um2;
    let spec = paper_workload(42);
    let alloc = Allocator::new().allocate(&spec).expect("allocates");
    let topo = spec.topology();
    let size = spec.config().slot_table_size;

    let mut always_on = 0.0;
    let mut router_gated = 0.0;
    let mut port_gated = 0.0;
    for r in topo.routers() {
        let arity = topo.arity(r);
        let port_area = area / arity as f64;
        let mut busy_union = vec![false; size as usize];
        let mut mean_util = 0.0;
        // Per-port accounting: each port's share of the router gates on
        // its own link's schedule.
        for p in 0..arity {
            let link = topo.out_link(r, Port(p as u8)).expect("port");
            let table = alloc.link_table(link);
            let util = table.utilisation();
            mean_util += util / arity as f64;
            for (slot, owner) in table.iter() {
                if owner.is_some() {
                    busy_union[slot as usize] = true;
                }
            }
            always_on += router_power(port_area, 500.0, util, SleepMode::AlwaysOn).total_mw();
            port_gated += router_power(
                port_area,
                500.0,
                util,
                SleepMode::ClockGated {
                    wake_overhead: 0.05,
                },
            )
            .total_mw();
        }
        // Whole-router gating: the clock runs whenever *any* port has a
        // reservation in the slot (the union occupancy), plus overhead.
        let occ = busy_union.iter().filter(|b| **b).count() as f64 / f64::from(size);
        let on = router_power(area, 500.0, mean_util, SleepMode::AlwaysOn);
        let clock_fraction = (occ + 0.05_f64).min(1.0);
        router_gated += on.leakage_mw + on.clock_mw * clock_fraction + on.data_mw;
    }

    row(&[
        "always-on (paper's current form)".to_string(),
        format!("{always_on:.1}"),
        "-".to_string(),
    ]);
    row(&[
        "whole-router clock gating".to_string(),
        format!("{router_gated:.1}"),
        format!("{:.0}%", (1.0 - router_gated / always_on) * 100.0),
    ]);
    row(&[
        "per-port clock gating".to_string(),
        format!("{port_gated:.1}"),
        format!("{:.0}%", (1.0 - port_gated / always_on) * 100.0),
    ]);
    check(
        "whole-router gating saves little on a busy NoC",
        router_gated > always_on * 0.9,
        format!("{always_on:.1} -> {router_gated:.1} mW"),
    );
    check(
        "per-port (schedule-driven) gating saves meaningful power",
        port_gated < always_on * 0.75,
        format!("{always_on:.1} -> {port_gated:.1} mW"),
    );
    println!("\na1_ablations: all checks passed");
}
