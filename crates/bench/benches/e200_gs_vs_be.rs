//! Experiment E200 — the paper's Section VII simulation: 200 connections,
//! 4 applications, 70 IPs on a 4×3 concentrated mesh (4 NIs per router).
//!
//! Paper claims to reproduce (shape, not absolute numbers):
//!
//! 1. aelite GS satisfies **every** throughput and latency requirement at
//!    500 MHz, with zero inter-connection interference;
//! 2. replacing GS with Æthereal best effort (same platform, same
//!    workload) loses composability; average latency is lower for most
//!    connections but the distribution is much wider and maxima grow
//!    significantly;
//! 3. the BE network needs an operating frequency well above 500 MHz
//!    (paper: "more than 900 MHz") before every latency requirement is
//!    observed to hold.

use aelite_analysis::service::{minimum_satisfying_frequency, verify_service};
use aelite_analysis::stats::Summary;
use aelite_baseline::{BeConfig, BeSim};
use aelite_bench::{check, header, row};
use aelite_core::{measured_services_be, AeliteSystem, SimOptions};
use aelite_spec::generate::paper_workload;

const SEED: u64 = 42;
const DURATION: u64 = 120_000;

fn main() {
    let spec = paper_workload(SEED);
    let system = AeliteSystem::design(spec.clone()).expect("paper workload allocates");

    // ---- GS at 500 MHz --------------------------------------------------
    let gs = system.simulate(SimOptions {
        duration_cycles: DURATION,
        ..SimOptions::default()
    });
    check(
        "GS meets all 200 contracts at 500 MHz",
        gs.service.all_ok(),
        format!(
            "{} verdicts, {} violations",
            gs.service.verdicts.len(),
            gs.service.violations().count()
        ),
    );

    // ---- BE on the same platform/workload -------------------------------
    let be_at = |mhz: u64| {
        let s = spec.at_frequency(mhz);
        let report = BeSim::new(&s).run(BeConfig {
            duration_cycles: DURATION,
            ..BeConfig::default()
        });
        let measured = measured_services_be(&report);
        (report, verify_service(&s, None, &measured, DURATION, 0.05))
    };
    let (be500, be500_service) = be_at(500);

    // Per-connection mean/max comparison at 500 MHz.
    let cycle_ns = spec.config().cycle_ns();
    let gs_means: Vec<f64> = gs
        .report
        .per_conn
        .iter()
        .filter_map(|s| s.mean_latency())
        .map(|c| c * cycle_ns)
        .collect();
    let gs_maxes: Vec<f64> = gs
        .report
        .per_conn
        .iter()
        .map(|s| s.max_latency as f64 * cycle_ns)
        .collect();
    let be_means: Vec<f64> = be500
        .per_conn
        .iter()
        .filter_map(|s| s.mean_latency())
        .map(|c| c * cycle_ns)
        .collect();
    let be_maxes: Vec<f64> = be500
        .per_conn
        .iter()
        .map(|s| s.max_latency as f64 * cycle_ns)
        .collect();
    let gs_mean = Summary::of(&gs_means).expect("gs data");
    let gs_max = Summary::of(&gs_maxes).expect("gs data");
    let be_mean = Summary::of(&be_means).expect("be data");
    let be_max = Summary::of(&be_maxes).expect("be data");

    header(
        "flit latency across 200 connections at 500 MHz (ns)",
        &[
            "network",
            "mean-of-means",
            "max-of-means",
            "mean-of-maxes",
            "max-of-maxes",
        ],
    );
    row(&[
        "aelite GS".to_string(),
        format!("{:.1}", gs_mean.mean),
        format!("{:.1}", gs_mean.max),
        format!("{:.1}", gs_max.mean),
        format!("{:.1}", gs_max.max),
    ]);
    row(&[
        "Aethereal BE".to_string(),
        format!("{:.1}", be_mean.mean),
        format!("{:.1}", be_mean.max),
        format!("{:.1}", be_max.mean),
        format!("{:.1}", be_max.max),
    ]);

    // Distribution histogram: the paper's "distribution of flit latencies
    // is much larger" — per-connection worst-case latency, GS vs BE.
    use aelite_analysis::stats::Histogram;
    let mut gs_hist = Histogram::new(0.0, 1_500.0, 10);
    let mut be_hist = Histogram::new(0.0, 1_500.0, 10);
    gs_hist.record_all(gs_maxes.iter().copied());
    be_hist.record_all(be_maxes.iter().copied());
    header(
        "per-connection worst flit latency distribution (ns)",
        &["bin", "GS connections", "BE connections"],
    );
    for ((lo, hi, g), (_, _, b)) in gs_hist.rows().zip(be_hist.rows()) {
        row(&[
            format!("{lo:>5.0}-{hi:<5.0}"),
            format!("{g:>4} {}", "#".repeat(g as usize / 2)),
            format!("{b:>4} {}", "#".repeat(b as usize / 2)),
        ]);
    }
    let (_, gs_over) = gs_hist.outliers();
    let (_, be_over) = be_hist.outliers();
    row(&[
        ">1500".to_string(),
        format!("{gs_over:>4}"),
        format!("{be_over:>4}"),
    ]);

    // "For most connections, the average latency observed with BE service
    // is lower than with GS."
    let lower_avg = gs
        .report
        .per_conn
        .iter()
        .zip(&be500.per_conn)
        .filter(|(g, b)| b.mean_latency().unwrap_or(f64::MAX) < g.mean_latency().unwrap_or(0.0))
        .count();
    check(
        "most connections have lower average latency under BE",
        lower_avg * 2 > 200,
        format!("{lower_avg}/200"),
    );

    // "the distribution of flit latencies is much larger, and the maximum
    // latencies grow significantly"
    let wider = be_max.max / gs_max.max;
    check(
        "BE worst-case latency grows significantly vs GS",
        wider > 1.5,
        format!(
            "max-of-maxes {:.1} vs {:.1} ns ({wider:.2}x)",
            be_max.max, gs_max.max
        ),
    );
    check(
        "BE violates some latency contracts at 500 MHz",
        !be500_service.all_ok(),
        format!("{} violations", be500_service.violations().count()),
    );

    // ---- Frequency sweep: BE needs a much faster clock ------------------
    header(
        "BE frequency sweep: violations per frequency",
        &["frequency (MHz)", "latency violations", "all ok"],
    );
    let candidates = [500u64, 600, 700, 800, 900, 1000, 1100, 1200];
    let mut reports = Vec::new();
    for &f in &candidates {
        let (_, service) = be_at(f);
        let violations = service.violations().count();
        row(&[
            f.to_string(),
            violations.to_string(),
            service.all_ok().to_string(),
        ]);
        reports.push((f, service));
    }
    let min_f = minimum_satisfying_frequency(&candidates, |f| {
        reports
            .iter()
            .find(|(ff, _)| *ff == f)
            .map(|(_, s)| s.clone())
            .expect("swept")
    });
    check(
        "BE needs a much higher frequency than GS's 500 MHz (paper: >900 MHz)",
        min_f.is_none_or(|f| f > 700),
        format!("minimum satisfying frequency: {min_f:?} MHz"),
    );
    println!("\ne200_gs_vs_be: all reproduction checks passed");
}
