//! Experiment T1 — regenerates the in-text comparison of Section VII:
//!
//! * aelite vs the combined GS+BE Æthereal router: "roughly 5× smaller
//!   area and 1.5× the frequency for the same 90 nm technology";
//! * bi-synchronous FIFO areas: ~1,500 µm² (custom \[18\]) vs ~3,300 µm²
//!   (standard cell \[4\]);
//! * complete arity-5 router with mesochronous links ~0.032 mm², vs the
//!   mesochronous router of \[4\] (0.082 mm²) and the asynchronous router
//!   of \[7\] (0.12 mm² scaled), both limited to two service levels and
//!   no composability.

use aelite_bench::{check, header, row};
use aelite_synth::compare::{comparison_table, GsBeComparison};
use aelite_synth::components::{bisync_fifo_area_um2, router_with_links_area_um2, FifoKind};
use aelite_synth::router::RouterParams;

fn main() {
    let p = RouterParams::paper_reference();

    // --- GS-only vs combined GS+BE -------------------------------------
    let cmp = GsBeComparison::for_params(&p);
    header(
        "aelite (GS-only) vs Aethereal (GS+BE), 90 nm",
        &["design", "area (um2)", "frequency (MHz)"],
    );
    row(&[
        "aelite arity-5".to_string(),
        format!("{:.0}", cmp.aelite_area_um2),
        format!("{:.0}", cmp.aelite_frequency_mhz),
    ]);
    row(&[
        "Aethereal GS+BE (scaled from 130 nm)".to_string(),
        format!("{:.0}", cmp.aethereal_area_um2),
        format!("{:.0}", cmp.aethereal_frequency_mhz),
    ]);
    check(
        "area ratio roughly 5x (paper: 'roughly 5x smaller area')",
        (4.0..6.0).contains(&cmp.area_ratio()),
        format!("{:.2}x", cmp.area_ratio()),
    );
    check(
        "frequency ratio ~1.5x (paper: '1.5x the frequency')",
        (1.15..1.6).contains(&cmp.frequency_ratio()),
        format!("{:.2}x", cmp.frequency_ratio()),
    );

    // --- FIFO areas ------------------------------------------------------
    header(
        "bi-synchronous FIFO cell area (4 words, 32-bit)",
        &["implementation", "area (um2)", "paper"],
    );
    let custom = bisync_fifo_area_um2(FifoKind::Custom, 4, 32);
    let std_cell = bisync_fifo_area_um2(FifoKind::StandardCell, 4, 32);
    row(&[
        "custom [18]".to_string(),
        format!("{custom:.0}"),
        "~1500".into(),
    ]);
    row(&[
        "standard cell [4]".to_string(),
        format!("{std_cell:.0}"),
        "~3300".into(),
    ]);
    check(
        "custom FIFO ~1.5 kum2",
        (custom - 1_500.0).abs() < 50.0,
        format!("{custom:.0} um2"),
    );
    check(
        "standard-cell FIFO ~3.3 kum2",
        (std_cell - 3_300.0).abs() < 100.0,
        format!("{std_cell:.0} um2"),
    );

    // --- Complete router with links vs published designs ----------------
    header(
        "complete router with mesochronous links, 90 nm",
        &["design", "area (um2)", "service levels", "composable"],
    );
    for r in comparison_table(&p) {
        row(&[
            r.name.clone(),
            format!("{:.0}", r.area_um2),
            if r.service_levels == u32::MAX {
                "unbounded".to_string()
            } else {
                r.service_levels.to_string()
            },
            r.composable.to_string(),
        ]);
    }
    let aelite_links = router_with_links_area_um2(&p, FifoKind::Custom);
    check(
        "aelite router+links ~0.032 mm2",
        (29_000.0..35_000.0).contains(&aelite_links),
        format!("{aelite_links:.0} um2"),
    );
    check(
        "aelite beats [4] (0.082 mm2) by >2x",
        aelite_links * 2.0 < 82_000.0,
        format!("{:.2}x smaller", 82_000.0 / aelite_links),
    );
    check(
        "aelite beats [7] (0.12 mm2 scaled) by >3x",
        aelite_links * 3.0 < 120_000.0,
        format!("{:.2}x smaller", 120_000.0 / aelite_links),
    );
    println!("\ntable1_router_comparison: all reproduction checks passed");
}
