//! Experiment F6b — regenerates **Fig 6(b)**: total cell area and maximum
//! frequency for data widths 32–256 bits at arity 6, synthesised for
//! maximum frequency.
//!
//! Paper shape: "the area grows linearly with the word width while the
//! operating frequency is reduced, also with a linear trend."

use aelite_bench::{check, header, row};
use aelite_synth::router::{router_max_frequency_mhz, synthesize_max, RouterParams};

fn main() {
    header(
        "Fig 6(b): width sweep (arity-6, max-frequency synthesis, 90 nm)",
        &["width (bits)", "cell area (um2)", "max frequency (MHz)"],
    );
    let widths: Vec<u32> = (1..=8).map(|k| k * 32).collect();
    let mut areas = Vec::new();
    let mut freqs = Vec::new();
    for &w in &widths {
        let p = RouterParams::symmetric(6, w);
        let r = synthesize_max(&p);
        let f = router_max_frequency_mhz(&p);
        areas.push(r.area_um2);
        freqs.push(f);
        row(&[
            format!("{w}"),
            format!("{:.0}", r.area_um2),
            format!("{f:.0}"),
        ]);
    }

    // Linearity of area: the increment per 32 bits is near-constant.
    let increments: Vec<f64> = areas.windows(2).map(|w| w[1] - w[0]).collect();
    let (imin, imax) = increments
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    check(
        "area grows linearly with width",
        imax / imin < 1.05,
        format!("per-32-bit increment {imin:.0}..{imax:.0} um2"),
    );
    // Linearity of frequency decline: delay grows linearly, so check the
    // frequency endpoints against the figure's axis and monotonicity.
    check(
        "frequency declines monotonically with width",
        freqs.windows(2).all(|w| w[1] < w[0]),
        format!("{:.0} -> {:.0} MHz", freqs[0], freqs[7]),
    );
    check(
        "frequency range matches the figure's axis (~740-880 MHz)",
        (760.0..900.0).contains(&freqs[0]) && (640.0..790.0).contains(&freqs[7]),
        format!("{:.0} / {:.0} MHz", freqs[0], freqs[7]),
    );
    check(
        "256-bit router stays feasible (massive throughput at low cost)",
        areas[7] < 180_000.0,
        format!("{:.0} um2", areas[7]),
    );
    println!("\nfig6b_width_sweep: all reproduction checks passed");
}
