//! Experiment M1 — Fig 3 behaviour: flit synchronicity over mesochronous
//! links.
//!
//! Sweeps the clock phases of every element of a small cycle-accurate
//! mesochronous NoC and verifies the paper's Section V properties:
//! deliveries land in exactly the same local flit cycle for every legal
//! skew, and the 4-word bi-synchronous FIFO sizing suffices (an overflow
//! would panic the models).

use aelite_alloc::allocate;
use aelite_bench::{check, header, row};
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::ni::Message;
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::ids::NiId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

fn main() {
    // 2x2 mesochronous mesh, two crossing connections.
    let topo = Topology::mesh(2, 2, 1);
    let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_mesochronous());
    let app = b.add_app("app");
    let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
    let c0 = b.add_connection(app, ips[0], ips[3], Bandwidth::from_mbytes_per_sec(50), 900);
    let c1 = b.add_connection(app, ips[1], ips[2], Bandwidth::from_mbytes_per_sec(50), 900);
    let spec = b.build();
    let alloc = allocate(&spec).expect("allocatable");

    header(
        "mesochronous skew sweep (2x2 mesh, per-element random phases)",
        &["phase seed", "c0 delivery cycles", "c1 delivery cycles"],
    );
    let mut all = Vec::new();
    for seed in [1u64, 7, 13, 42, 99, 123, 555, 2026] {
        let mut net = build_network(
            &spec,
            &alloc,
            NetworkKind::Mesochronous { phase_seed: seed },
            false,
        );
        for conn in [c0, c1] {
            for seq in 0..3 {
                net.queue(conn).borrow_mut().push_back(Message {
                    seq,
                    words: 2,
                    ready_cycle: u64::from(seq) * 30,
                });
            }
        }
        net.run_cycles(3_000);
        let d0 = net.delivery_cycles(c0);
        let d1 = net.delivery_cycles(c1);
        row(&[seed.to_string(), format!("{d0:?}"), format!("{d1:?}")]);
        assert_eq!(d0.len(), 3, "seed {seed}: c0 lost flits");
        assert_eq!(d1.len(), 3, "seed {seed}: c1 lost flits");
        all.push((d0, d1));
    }
    check(
        "delivery cycles identical for every phase assignment (flit synchronicity)",
        all.windows(2).all(|w| w[0] == w[1]),
        format!("{} phase seeds, all equal", all.len()),
    );
    check(
        "4-word link FIFOs never overflowed (panic-free run)",
        true,
        "overflow would have aborted the models",
    );
    println!("\nm1_meso_skew: all reproduction checks passed");
}
