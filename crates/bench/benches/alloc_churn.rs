//! Experiment P3 — online connection-churn kernels (not a paper
//! artefact).
//!
//! Times the [`ChurnEngine`]'s O(Δ) setup/teardown path on the paper's
//! Section VII platform and on the 8×8 / 64-slot mesh the throughput
//! gate tracks, against the per-event cost of the pre-online
//! counterfactual (full batch re-allocation of the whole set with a warm
//! route cache):
//!
//! * `churn_pair_*` — one teardown + one setup of a rotating connection
//!   against an otherwise-live allocation (the steady-state hot path);
//! * `churn_switch_*` — a whole use-case switch (one application out,
//!   another in) applied as one delta;
//! * `full_realloc_*` — batch re-allocation of the same workload, the
//!   cost the O(Δ) kernels replace per event.
//!
//! `examples/bench_churn.rs` runs the trace-driven version of this
//! matrix and records the numbers in `BENCH_CHURN.json`.

use aelite_alloc::{allocate, Allocator, RouteCache};
use aelite_online::ChurnEngine;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use aelite_spec::ids::AppId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;
use std::hint::black_box;

fn workloads() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("paper_200", paper_workload(42)),
        ("mesh8x8_1000", scaled_workload(8, 8, 4, 1000, 1)),
    ]
}

fn bench_churn_pair(c: &mut Criterion) {
    for (name, spec) in workloads() {
        let mut alloc = allocate(&spec).expect("allocates");
        let mut engine = ChurnEngine::new(&spec);
        let n = spec.connections().len();
        let next = Cell::new(0usize);
        c.bench_function(&format!("churn_pair_{name}"), |b| {
            b.iter(|| {
                let conn = spec.connections()[next.get()].id;
                next.set((next.get() + 1) % n);
                assert!(engine.close(&mut alloc, conn));
                engine
                    .open(black_box(&spec), &mut alloc, conn)
                    .expect("re-admits");
            });
        });
    }
}

fn bench_churn_switch(c: &mut Criterion) {
    for (name, spec) in workloads() {
        // Start inside use case {0, 1, 2}; flip apps 2 and 3 per iter.
        let uc1 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(2)]);
        let mut alloc = allocate(&uc1).expect("use case allocates");
        let mut engine = ChurnEngine::new(&spec);
        let app2: Vec<_> = spec.app_connections(AppId::new(2)).map(|c| c.id).collect();
        let app3: Vec<_> = spec.app_connections(AppId::new(3)).map(|c| c.id).collect();
        let out_is_2 = Cell::new(true);
        c.bench_function(&format!("churn_switch_{name}"), |b| {
            b.iter(|| {
                let (close, open) = if out_is_2.get() {
                    (&app2, &app3)
                } else {
                    (&app3, &app2)
                };
                out_is_2.set(!out_is_2.get());
                engine
                    .switch(black_box(&spec), &mut alloc, close, open)
                    .expect("use cases co-exist");
            });
        });
    }
}

fn bench_full_realloc(c: &mut Criterion) {
    for (name, spec) in workloads() {
        let allocator = Allocator::new();
        let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
        let _ = allocator
            .allocate_with_cache(&spec, &mut routes)
            .expect("allocates");
        c.bench_function(&format!("full_realloc_{name}"), |b| {
            b.iter(|| {
                allocator
                    .allocate_with_cache(black_box(&spec), &mut routes)
                    .expect("allocates")
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_churn_pair, bench_churn_switch, bench_full_realloc
}
criterion_main!(benches);
