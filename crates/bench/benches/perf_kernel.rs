//! Experiment P1 — engineering performance of the simulators themselves
//! (Criterion micro/macro benchmarks; not a paper artefact).

use aelite_alloc::allocate;
use aelite_baseline::{BeConfig, BeSim};
use aelite_core::AeliteSystem;
use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
use aelite_spec::generate::paper_workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_allocation(c: &mut Criterion) {
    let spec = paper_workload(42);
    c.bench_function("allocate_paper_workload_200_conns", |b| {
        b.iter(|| allocate(black_box(&spec)).expect("allocates"));
    });
}

fn bench_flitsim(c: &mut Criterion) {
    let spec = paper_workload(42);
    let alloc = allocate(&spec).expect("allocates");
    c.bench_function("flitsim_200_conns_30k_cycles", |b| {
        b.iter(|| {
            FlitSim::new(black_box(&spec), black_box(&alloc)).run(FlitSimConfig {
                duration_cycles: 30_000,
                ..FlitSimConfig::default()
            })
        });
    });
}

fn bench_baseline(c: &mut Criterion) {
    let spec = paper_workload(42);
    c.bench_function("besim_200_conns_30k_cycles", |b| {
        b.iter(|| {
            BeSim::new(black_box(&spec)).run(BeConfig {
                duration_cycles: 30_000,
                ..BeConfig::default()
            })
        });
    });
}

fn bench_design(c: &mut Criterion) {
    let spec = paper_workload(42);
    c.bench_function("design_full_system", |b| {
        b.iter(|| AeliteSystem::design(black_box(spec.clone())).expect("designs"));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allocation, bench_flitsim, bench_baseline, bench_design
}
criterion_main!(benches);
