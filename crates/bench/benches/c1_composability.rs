//! Experiment C1 — the composability claim: every application's
//! per-flit delivery timeline is bit-identical whether it runs alone,
//! with any subset of the other applications, or in the full system —
//! and the best-effort baseline demonstrably does *not* have this
//! property.

use aelite_analysis::composability::compare_timelines;
use aelite_baseline::{BeConfig, BeSim};
use aelite_bench::{check, header, row};
use aelite_core::{timelines, AeliteSystem, SimOptions};
use aelite_spec::generate::paper_workload;
use aelite_spec::ids::AppId;

const SEED: u64 = 42;
const DURATION: u64 = 60_000;

fn main() {
    let spec = paper_workload(SEED);
    let system = AeliteSystem::design(spec.clone()).expect("paper workload allocates");
    let opts = SimOptions {
        duration_cycles: DURATION,
        record_timestamps: true,
        ..SimOptions::default()
    };

    // Full-system reference timelines.
    let full = system.simulate(opts);
    let reference = timelines(&full.report);

    header(
        "GS composability: isolated runs vs the full system",
        &["composition", "connections compared", "divergent"],
    );
    // Each application alone.
    for app in spec.apps() {
        let isolated = system.simulate_apps(&[app.id], opts);
        let result = compare_timelines(&reference, &timelines(&isolated.report));
        row(&[
            format!("{} alone", app.id),
            result.compared.to_string(),
            result.divergent.len().to_string(),
        ]);
        check(
            &format!("{} timing unchanged in isolation", app.id),
            result.is_composable(),
            format!("{result}"),
        );
    }
    // Pairs, exercising partial compositions.
    for pair in [[0u32, 1], [1, 2], [2, 3]] {
        let apps = [AppId::new(pair[0]), AppId::new(pair[1])];
        let partial = system.simulate_apps(&apps, opts);
        let result = compare_timelines(&reference, &timelines(&partial.report));
        row(&[
            format!("A{} + A{}", pair[0], pair[1]),
            result.compared.to_string(),
            result.divergent.len().to_string(),
        ]);
        check(
            &format!("A{}+A{} timing unchanged", pair[0], pair[1]),
            result.is_composable(),
            format!("{result}"),
        );
    }

    // The BE baseline loses composability: removing other applications
    // changes delivered counts/latencies for the remaining one.
    header(
        "BE non-composability (same workload, best effort)",
        &["composition", "max latency app0 (cycles)"],
    );
    let be_full = BeSim::new(&spec).run(BeConfig {
        duration_cycles: DURATION,
        ..BeConfig::default()
    });
    let only0 = spec.restricted_to(&[AppId::new(0)]);
    let be_alone = BeSim::new(&only0).run(BeConfig {
        duration_cycles: DURATION,
        ..BeConfig::default()
    });
    let max_full: u64 = only0
        .connections()
        .iter()
        .map(|c| be_full.conn(c.id).max_latency)
        .max()
        .expect("app0 has connections");
    let max_alone: u64 = only0
        .connections()
        .iter()
        .map(|c| be_alone.conn(c.id).max_latency)
        .max()
        .expect("app0 has connections");
    row(&["full system".to_string(), max_full.to_string()]);
    row(&["app0 alone".to_string(), max_alone.to_string()]);
    check(
        "BE timing depends on co-running applications (not composable)",
        max_full > max_alone,
        format!("{max_full} vs {max_alone} cycles"),
    );
    println!("\nc1_composability: all reproduction checks passed");
}
