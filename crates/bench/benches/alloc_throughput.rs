//! Experiment P2 — allocator throughput trajectory (not a paper
//! artefact).
//!
//! Times the TDM allocation flow on the paper's Section VII platform and
//! on synthetic scaled meshes up to 8×8 / 2000 connections, in three
//! configurations:
//!
//! * `seed_*` — the pre-optimization allocator preserved in
//!   `aelite_baseline::alloc_ref` (per-slot probing, clone-heavy DFS,
//!   quadratic kernels);
//! * `opt_*` — the current bitset + lazy-route-cache allocator, cold
//!   (cache built per allocation, as in a one-shot design flow);
//! * `warm_*` — the current allocator re-using a [`RouteCache`] across
//!   allocations (the steady-state re-allocation path the ROADMAP's
//!   heavy-traffic scenario cares about).
//!
//! `examples/bench_alloc.rs` runs the same matrix outside criterion and
//! records the numbers in `BENCH_ALLOC.json`.

use aelite_alloc::{allocate, Allocator, RouteCache};
use aelite_baseline::allocate_seed;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn workloads() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("paper_200", paper_workload(42)),
        ("mesh4x4_500", scaled_workload(4, 4, 4, 500, 1)),
        ("mesh8x8_1000", scaled_workload(8, 8, 4, 1000, 1)),
        ("mesh8x8_2000", scaled_workload(8, 8, 4, 2000, 1)),
    ]
}

fn bench_seed(c: &mut Criterion) {
    for (name, spec) in workloads() {
        c.bench_function(&format!("seed_{name}"), |b| {
            b.iter(|| allocate_seed(black_box(&spec)).expect("allocates"));
        });
    }
}

fn bench_opt_cold(c: &mut Criterion) {
    for (name, spec) in workloads() {
        c.bench_function(&format!("opt_{name}"), |b| {
            b.iter(|| allocate(black_box(&spec)).expect("allocates"));
        });
    }
}

fn bench_opt_warm(c: &mut Criterion) {
    for (name, spec) in workloads() {
        let allocator = Allocator::new();
        let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
        // Prime the cache once; the timed loop is the steady state.
        let _ = allocator
            .allocate_with_cache(&spec, &mut routes)
            .expect("allocates");
        c.bench_function(&format!("warm_{name}"), |b| {
            b.iter(|| {
                allocator
                    .allocate_with_cache(black_box(&spec), &mut routes)
                    .expect("allocates")
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_seed, bench_opt_cold, bench_opt_warm
}
criterion_main!(benches);
