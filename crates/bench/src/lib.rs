//! # aelite-bench — evaluation harness utilities
//!
//! Shared helpers for the benchmark binaries that regenerate every figure
//! and table of the paper (see `DESIGN.md` section 4 for the experiment
//! index and `EXPERIMENTS.md` for recorded results).

#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a table header followed by an underline, for the figure
/// regenerators' plain-text output.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    let row = columns.join(" | ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one table row from display-able cells.
pub fn row<D: Display>(cells: &[D]) {
    println!(
        "{}",
        cells
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" | ")
    );
}

/// Prints a paper-vs-measured checkline and panics on failure so that
/// `cargo bench` fails loudly when a reproduction regresses.
///
/// # Panics
///
/// Panics if `ok` is false.
pub fn check(label: &str, ok: bool, detail: impl Display) {
    let mark = if ok { "PASS" } else { "FAIL" };
    println!("[{mark}] {label}: {detail}");
    assert!(ok, "reproduction check failed: {label}: {detail}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_quietly() {
        check("smoke", true, "fine");
    }

    #[test]
    #[should_panic(expected = "reproduction check failed")]
    fn check_fails_loudly() {
        check("smoke", false, "broken");
    }
}
