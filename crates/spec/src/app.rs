//! Applications, connections and the complete system specification.
//!
//! An *application* is a set of logical *connections* between IP ports that
//! is developed and verified as a unit (paper Section I). aelite's central
//! promise — composability — is that the timing of one application's
//! connections is unaffected by every other application.

use crate::config::NocConfig;
use crate::ids::{AppId, ConnId, IpId, NiId};
use crate::topology::Topology;
use crate::traffic::{Bandwidth, TrafficPattern};
use core::fmt;

/// A logical connection between a source IP and a destination IP, with its
/// guaranteed-service contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Unique id within the system.
    pub id: ConnId,
    /// Owning application.
    pub app: AppId,
    /// Data-producing IP core.
    pub src: IpId,
    /// Data-consuming IP core.
    pub dst: IpId,
    /// Contracted minimum throughput.
    pub bandwidth: Bandwidth,
    /// Contracted maximum latency (injection at source NI to delivery at
    /// destination NI) in nanoseconds.
    pub max_latency_ns: u64,
    /// Offered-load pattern used during simulation.
    pub pattern: TrafficPattern,
    /// Message size in bytes used by the traffic generator.
    pub message_bytes: u32,
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} -> {}, {}, <= {} ns",
            self.id, self.app, self.src, self.dst, self.bandwidth, self.max_latency_ns
        )
    }
}

/// An application: a named group of connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    /// Unique id within the system.
    pub id: AppId,
    /// Human-readable name (e.g. "video decoder").
    pub name: String,
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.name)
    }
}

/// A complete system specification: platform + mapping + use cases.
///
/// This is the input to the allocation flow ([`aelite-alloc`]) and, after
/// allocation, to the simulators.
///
/// [`aelite-alloc`]: https://docs.rs/aelite-alloc
///
/// # Examples
///
/// ```
/// use aelite_spec::app::SystemSpecBuilder;
/// use aelite_spec::config::NocConfig;
/// use aelite_spec::topology::Topology;
/// use aelite_spec::traffic::Bandwidth;
///
/// let topo = Topology::mesh(2, 2, 1);
/// let nis: Vec<_> = topo.nis().collect();
/// let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
/// let app = b.add_app("camera pipeline");
/// let cam = b.add_ip_at(nis[0]);
/// let mem = b.add_ip_at(nis[3]);
/// b.add_connection(app, cam, mem, Bandwidth::from_mbytes_per_sec(100), 500);
/// let spec = b.build();
/// assert_eq!(spec.connections().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemSpec {
    topology: Topology,
    config: NocConfig,
    apps: Vec<Application>,
    connections: Vec<Connection>,
    /// NI hosting each IP, indexed by `IpId`.
    mapping: Vec<NiId>,
    /// Cached largest connection id plus one; kept in sync by every
    /// constructor and connection-retaining copy so `conn_id_bound` is
    /// O(1) on the online admission hot path.
    conn_bound: usize,
}

impl SystemSpec {
    /// The platform topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The NoC-wide configuration.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// All applications.
    #[must_use]
    pub fn apps(&self) -> &[Application] {
        &self.apps
    }

    /// All connections, indexable by [`ConnId::index`](crate::ids::ConnId).
    #[must_use]
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// The connection with id `id`.
    ///
    /// Connections keep their global ids even in specs produced by
    /// [`restricted_to`](Self::restricted_to), so this performs a binary
    /// search by id rather than a positional index.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this spec.
    #[must_use]
    pub fn connection(&self, id: ConnId) -> &Connection {
        let i = self
            .connections
            .binary_search_by_key(&id, |c| c.id)
            .unwrap_or_else(|_| panic!("{id} not in this spec"));
        &self.connections[i]
    }

    /// The largest connection id plus one — the size needed for dense
    /// per-connection arrays that stay valid across restricted specs.
    ///
    /// O(1): the bound is computed when the spec is built and maintained
    /// by the restricting copies, so per-round callers (grant sizing,
    /// `Allocator::begin_round`, `build_turbo`) never rescan the
    /// connection list.
    #[must_use]
    pub fn conn_id_bound(&self) -> usize {
        debug_assert_eq!(
            self.conn_bound,
            Self::scan_conn_bound(&self.connections),
            "cached conn_id_bound out of sync with connection list"
        );
        self.conn_bound
    }

    /// The O(connections) scan the cache replaces; still the source of
    /// truth at construction time and in debug assertions.
    fn scan_conn_bound(connections: &[Connection]) -> usize {
        connections
            .iter()
            .map(|c| c.id.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of IP cores.
    #[must_use]
    pub fn ip_count(&self) -> usize {
        self.mapping.len()
    }

    /// The NI hosting `ip`.
    ///
    /// # Panics
    ///
    /// Panics if `ip` does not belong to this spec.
    #[must_use]
    pub fn ip_ni(&self, ip: IpId) -> NiId {
        self.mapping[ip.index()]
    }

    /// The connections belonging to `app`.
    pub fn app_connections(&self, app: AppId) -> impl Iterator<Item = &Connection> + '_ {
        self.connections.iter().filter(move |c| c.app == app)
    }

    /// A copy of this spec containing only the connections of `apps` —
    /// used by the composability experiments to run applications in
    /// isolation while keeping ids stable.
    ///
    /// Connection ids are preserved (they keep their global index), so
    /// per-connection results of the restricted and full systems can be
    /// compared directly.
    #[must_use]
    pub fn restricted_to(&self, apps: &[AppId]) -> SystemSpec {
        let mut copy = self.clone();
        copy.connections.retain(|c| apps.contains(&c.app));
        copy.conn_bound = Self::scan_conn_bound(&copy.connections);
        copy
    }

    /// A copy of this spec containing only the listed connections (ids
    /// preserved, order kept) — the "surviving set" view the online
    /// churn flow validates and re-allocates against after a stream of
    /// setups and teardowns.
    #[must_use]
    pub fn restricted_to_connections(&self, conns: &[ConnId]) -> SystemSpec {
        let keep: std::collections::HashSet<ConnId> = conns.iter().copied().collect();
        let mut copy = self.clone();
        copy.connections.retain(|c| keep.contains(&c.id));
        copy.conn_bound = Self::scan_conn_bound(&copy.connections);
        copy
    }

    /// Total contracted bandwidth entering the NoC.
    #[must_use]
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.connections.iter().map(|c| c.bandwidth).sum()
    }

    /// A copy of this spec at a different operating frequency — used by
    /// the frequency sweeps of the evaluation (requirements, topology and
    /// mapping are unchanged; slot bandwidths scale with the clock).
    #[must_use]
    pub fn at_frequency(&self, frequency_mhz: u64) -> SystemSpec {
        let mut copy = self.clone();
        copy.config = copy.config.at_frequency(frequency_mhz);
        copy
    }

    /// A copy of this spec with `stages` mesochronous link pipeline
    /// stages per link and every latency contract scaled by
    /// `latency_factor` — used to re-target a drawn workload at the
    /// mesochronous organisation (paper Section V), where each hop costs
    /// an extra TDM slot and contracts drawn for the synchronous NoC may
    /// no longer be meetable.
    #[must_use]
    pub fn with_link_pipeline_stages(&self, stages: u32, latency_factor: u64) -> SystemSpec {
        let mut copy = self.clone();
        copy.config.link_pipeline_stages = stages;
        for c in &mut copy.connections {
            c.max_latency_ns = c.max_latency_ns.saturating_mul(latency_factor);
        }
        copy
    }

    /// A copy of this spec with every connection's offered-load pattern
    /// replaced by `pattern` — contracts, mapping and ids are unchanged,
    /// so allocations carry over directly. Used by the simulator
    /// cross-validation tests to drive one workload under different
    /// traffic regimes.
    #[must_use]
    pub fn with_pattern(&self, pattern: TrafficPattern) -> SystemSpec {
        let mut copy = self.clone();
        for c in &mut copy.connections {
            c.pattern = pattern;
        }
        copy
    }
}

/// Builder for [`SystemSpec`].
#[derive(Debug)]
pub struct SystemSpecBuilder {
    topology: Topology,
    config: NocConfig,
    apps: Vec<Application>,
    connections: Vec<Connection>,
    mapping: Vec<NiId>,
}

impl SystemSpecBuilder {
    /// Starts a spec on the given platform.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`NocConfig::validate`].
    #[must_use]
    pub fn new(topology: Topology, config: NocConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid NoC configuration: {e}");
        }
        SystemSpecBuilder {
            topology,
            config,
            apps: Vec::new(),
            connections: Vec::new(),
            mapping: Vec::new(),
        }
    }

    /// The platform topology (for choosing NIs while building).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Registers an application.
    pub fn add_app(&mut self, name: impl Into<String>) -> AppId {
        let id = AppId::new(self.apps.len() as u32);
        self.apps.push(Application {
            id,
            name: name.into(),
        });
        id
    }

    /// Places a new IP core on `ni`.
    ///
    /// Several IPs may share one NI (the paper's platform maps 70 IPs onto
    /// 48 NIs).
    ///
    /// # Panics
    ///
    /// Panics if `ni` is not part of the topology.
    pub fn add_ip_at(&mut self, ni: NiId) -> IpId {
        assert!(
            ni.index() < self.topology.ni_count(),
            "{ni} is not part of the topology"
        );
        let id = IpId::new(self.mapping.len() as u32);
        self.mapping.push(ni);
        id
    }

    /// Adds a constant-rate connection with a 16-byte message size.
    ///
    /// Use [`add_connection_with`](Self::add_connection_with) for full
    /// control.
    pub fn add_connection(
        &mut self,
        app: AppId,
        src: IpId,
        dst: IpId,
        bandwidth: Bandwidth,
        max_latency_ns: u64,
    ) -> ConnId {
        self.add_connection_with(
            app,
            src,
            dst,
            bandwidth,
            max_latency_ns,
            TrafficPattern::ConstantRate,
            16,
        )
    }

    /// Adds a connection with an explicit traffic pattern and message size.
    ///
    /// # Panics
    ///
    /// Panics if `app`, `src` or `dst` were not created by this builder,
    /// if `src == dst` maps an IP onto itself, or if `message_bytes` is 0.
    #[allow(clippy::too_many_arguments)]
    pub fn add_connection_with(
        &mut self,
        app: AppId,
        src: IpId,
        dst: IpId,
        bandwidth: Bandwidth,
        max_latency_ns: u64,
        pattern: TrafficPattern,
        message_bytes: u32,
    ) -> ConnId {
        assert!(app.index() < self.apps.len(), "unknown {app}");
        assert!(src.index() < self.mapping.len(), "unknown source {src}");
        assert!(
            dst.index() < self.mapping.len(),
            "unknown destination {dst}"
        );
        assert!(src != dst, "connection endpoints must differ ({src})");
        assert!(message_bytes > 0, "message size must be non-zero");
        let id = ConnId::new(self.connections.len() as u32);
        self.connections.push(Connection {
            id,
            app,
            src,
            dst,
            bandwidth,
            max_latency_ns,
            pattern,
            message_bytes,
        });
        id
    }

    /// The NI hosting an already-placed IP (used by the workload
    /// generator while the spec is still under construction).
    pub(crate) fn mapping_for(&self, ip: IpId) -> NiId {
        self.mapping[ip.index()]
    }

    /// Finalises the specification.
    #[must_use]
    pub fn build(self) -> SystemSpec {
        let conn_bound = SystemSpec::scan_conn_bound(&self.connections);
        SystemSpec {
            topology: self.topology,
            config: self.config,
            apps: self.apps,
            connections: self.connections,
            mapping: self.mapping,
            conn_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NiId;

    fn tiny_spec() -> SystemSpec {
        let topo = Topology::mesh(2, 1, 2);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let a0 = b.add_app("app0");
        let a1 = b.add_app("app1");
        let ip0 = b.add_ip_at(NiId::new(0));
        let ip1 = b.add_ip_at(NiId::new(2));
        let ip2 = b.add_ip_at(NiId::new(3));
        b.add_connection(a0, ip0, ip1, Bandwidth::from_mbytes_per_sec(100), 400);
        b.add_connection(a0, ip1, ip0, Bandwidth::from_mbytes_per_sec(50), 300);
        b.add_connection(a1, ip0, ip2, Bandwidth::from_mbytes_per_sec(20), 500);
        b.build()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let spec = tiny_spec();
        assert_eq!(spec.apps().len(), 2);
        assert_eq!(spec.connections().len(), 3);
        assert_eq!(spec.ip_count(), 3);
        assert_eq!(
            spec.connection(ConnId::new(1))
                .bandwidth
                .mbytes_per_sec_f64(),
            50.0
        );
    }

    #[test]
    fn mapping_resolves_ips_to_nis() {
        let spec = tiny_spec();
        assert_eq!(spec.ip_ni(IpId::new(0)), NiId::new(0));
        assert_eq!(spec.ip_ni(IpId::new(2)), NiId::new(3));
    }

    #[test]
    fn app_connections_filters_by_app() {
        let spec = tiny_spec();
        assert_eq!(spec.app_connections(AppId::new(0)).count(), 2);
        assert_eq!(spec.app_connections(AppId::new(1)).count(), 1);
    }

    #[test]
    fn restricted_to_preserves_ids() {
        let spec = tiny_spec();
        let only_a1 = spec.restricted_to(&[AppId::new(1)]);
        assert_eq!(only_a1.connections().len(), 1);
        assert_eq!(only_a1.connections()[0].id, ConnId::new(2));
        // Platform unchanged.
        assert_eq!(only_a1.topology().router_count(), 2);
    }

    #[test]
    fn conn_id_bound_cache_tracks_restriction() {
        let spec = tiny_spec();
        assert_eq!(spec.conn_id_bound(), 3);
        // Dropping the highest-id connection must lower the cached bound,
        // exactly as the original scan would.
        let only_a0 = spec.restricted_to(&[AppId::new(0)]);
        assert_eq!(only_a0.conn_id_bound(), 2);
        let survivors = spec.restricted_to_connections(&[ConnId::new(2)]);
        assert_eq!(survivors.conn_id_bound(), 3);
        let none = spec.restricted_to_connections(&[]);
        assert_eq!(none.conn_id_bound(), 0);
        // Copies that keep the connection list keep the bound.
        assert_eq!(spec.at_frequency(400).conn_id_bound(), 3);
        assert_eq!(spec.with_link_pipeline_stages(1, 2).conn_id_bound(), 3);
    }

    #[test]
    fn total_bandwidth_sums_contracts() {
        let spec = tiny_spec();
        assert_eq!(spec.total_bandwidth(), Bandwidth::from_mbytes_per_sec(170));
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_connection_rejected() {
        let topo = Topology::mesh(1, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let a = b.add_app("a");
        let ip = b.add_ip_at(NiId::new(0));
        b.add_connection(a, ip, ip, Bandwidth::ZERO, 100);
    }

    #[test]
    #[should_panic(expected = "not part of the topology")]
    fn ip_on_unknown_ni_rejected() {
        let topo = Topology::mesh(1, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let _ = b.add_ip_at(NiId::new(5));
    }

    #[test]
    #[should_panic(expected = "unknown source")]
    fn unknown_ip_rejected() {
        let topo = Topology::mesh(1, 1, 2);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let a = b.add_app("a");
        let dst = b.add_ip_at(NiId::new(0));
        b.add_connection(a, IpId::new(9), dst, Bandwidth::ZERO, 100);
    }

    #[test]
    fn connection_display_mentions_contract() {
        let spec = tiny_spec();
        let s = spec.connection(ConnId::new(0)).to_string();
        assert!(s.contains("100.000 MB/s"), "{s}");
        assert!(s.contains("400 ns"), "{s}");
    }
}
