//! Bandwidth, service requirements and traffic patterns.

use core::fmt;

/// A sustained bandwidth in bytes per second.
///
/// Stored as an exact integer; the paper quotes connection requirements in
/// Mbyte/s (decimal, 10^6 bytes).
///
/// # Examples
///
/// ```
/// use aelite_spec::traffic::Bandwidth;
///
/// let bw = Bandwidth::from_mbytes_per_sec(500);
/// assert_eq!(bw.bytes_per_sec(), 500_000_000);
/// assert_eq!(bw.to_string(), "500.000 MB/s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from bytes per second.
    #[must_use]
    pub const fn from_bytes_per_sec(bytes: u64) -> Self {
        Bandwidth(bytes)
    }

    /// Creates a bandwidth from decimal megabytes per second.
    #[must_use]
    pub const fn from_mbytes_per_sec(mb: u64) -> Self {
        Bandwidth(mb * 1_000_000)
    }

    /// The exact rate in bytes per second.
    #[must_use]
    pub const fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// The rate in decimal megabytes per second (may be fractional).
    #[must_use]
    pub fn mbytes_per_sec_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating sum of two bandwidths.
    #[must_use]
    pub const fn saturating_add(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(other.0))
    }

    /// The fraction `self / capacity` as a float in `[0, ∞)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn utilisation_of(self, capacity: Bandwidth) -> f64 {
        assert!(capacity.0 > 0, "capacity must be non-zero");
        self.0 as f64 / capacity.0 as f64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MB/s", self.mbytes_per_sec_f64())
    }
}

impl core::ops::Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl core::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, core::ops::Add::add)
    }
}

/// How an IP core offers traffic on a connection during simulation.
///
/// The service *contract* (bandwidth/latency) lives on the
/// [`Connection`](crate::app::Connection); the pattern describes the offered
/// load used to exercise that contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrafficPattern {
    /// Constant bit rate at exactly the connection's contracted bandwidth,
    /// in fixed-size messages. This is the paper's evaluation regime.
    #[default]
    ConstantRate,
    /// The source always has data ready — used to measure the delivered
    /// (saturated) throughput against the allocated bound.
    Saturating,
    /// Periodic bursts: `burst_bytes` offered every `period_ns`, giving the
    /// same average rate as the contract but with worst-case jitter.
    Bursty {
        /// Bytes offered back-to-back at the start of each period.
        burst_bytes: u32,
        /// Burst repetition period in nanoseconds.
        period_ns: u32,
    },
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficPattern::ConstantRate => write!(f, "constant-rate"),
            TrafficPattern::Saturating => write!(f, "saturating"),
            TrafficPattern::Bursty {
                burst_bytes,
                period_ns,
            } => write!(f, "bursty({burst_bytes} B / {period_ns} ns)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_constructors_agree() {
        assert_eq!(
            Bandwidth::from_mbytes_per_sec(10),
            Bandwidth::from_bytes_per_sec(10_000_000)
        );
    }

    #[test]
    fn bandwidth_sums() {
        let total: Bandwidth = [
            Bandwidth::from_mbytes_per_sec(10),
            Bandwidth::from_mbytes_per_sec(20),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, Bandwidth::from_mbytes_per_sec(30));
    }

    #[test]
    fn utilisation_fraction() {
        let used = Bandwidth::from_mbytes_per_sec(500);
        let cap = Bandwidth::from_mbytes_per_sec(2_000);
        assert!((used.utilisation_of(cap) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn utilisation_of_zero_capacity_panics() {
        let _ = Bandwidth::from_mbytes_per_sec(1).utilisation_of(Bandwidth::ZERO);
    }

    #[test]
    fn pattern_display() {
        assert_eq!(TrafficPattern::ConstantRate.to_string(), "constant-rate");
        assert_eq!(TrafficPattern::Saturating.to_string(), "saturating");
        assert_eq!(
            TrafficPattern::Bursty {
                burst_bytes: 128,
                period_ns: 1_000
            }
            .to_string(),
            "bursty(128 B / 1000 ns)"
        );
    }

    #[test]
    fn saturating_add_caps() {
        let max = Bandwidth::from_bytes_per_sec(u64::MAX);
        assert_eq!(max.saturating_add(max), max);
    }
}
