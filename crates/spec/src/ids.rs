//! Typed identifiers for every architectural object in an aelite system.
//!
//! Newtype indices ([C-NEWTYPE]) keep routers, network interfaces, IP cores,
//! links, connections and applications statically distinct: passing a
//! `RouterId` where an `NiId` is expected is a compile error, not a silent
//! off-by-one.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index of this id.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A router in the topology.
    RouterId,
    "R"
);
id_type!(
    /// A network interface (NI) attaching IP cores to the NoC.
    NiId,
    "NI"
);
id_type!(
    /// An IP core (processor, accelerator, memory, ...) using the NoC.
    IpId,
    "IP"
);
id_type!(
    /// A directed physical link between two network elements.
    LinkId,
    "L"
);
id_type!(
    /// A logical connection between two IP ports (paper Section III).
    ConnId,
    "c"
);
id_type!(
    /// An application: a set of connections developed and verified together.
    AppId,
    "A"
);

/// A port index on a router or NI, used in source-route encodings.
///
/// aelite routers are parametrisable in arity; the paper evaluates arities
/// 2–7 but the encoding (3 bits per hop for arity ≤ 8) is a property of the
/// header codec, not of this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(pub u8);

impl Port {
    /// The raw port index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(RouterId::new(3).to_string(), "R3");
        assert_eq!(NiId::new(0).to_string(), "NI0");
        assert_eq!(IpId::new(12).to_string(), "IP12");
        assert_eq!(LinkId::new(7).to_string(), "L7");
        assert_eq!(ConnId::new(199).to_string(), "c199");
        assert_eq!(AppId::new(2).to_string(), "A2");
        assert_eq!(Port(5).to_string(), "p5");
    }

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(RouterId::new(9).index(), 9);
        assert_eq!(usize::from(NiId::new(4)), 4);
        assert_eq!(Port(3).index(), 3);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ConnId::new(1) < ConnId::new(2));
        assert!(RouterId::new(0) < RouterId::new(10));
    }
}
