//! Seeded random workload generation, including the paper's Section VII
//! experiment platform.
//!
//! The paper evaluates aelite with "a NoC with 200 connections, divided
//! across four different applications. The throughput and latency for the
//! connections is randomly chosen, and range from 10 to 500 Mbyte/s and 35
//! to 500 ns, respectively. With a total of 70 IPs, mapped to a 4×3 mesh
//! with 4 NIs per router". [`paper_workload`] regenerates exactly that
//! setup from a seed.
//!
//! Because the paper does not publish its random draw, we make two choices
//! and record them here (and in `DESIGN.md`):
//!
//! 1. **Log-uniform bandwidths.** A uniform draw over 10–500 MB/s gives an
//!    aggregate demand (~51 GB/s) that exceeds the platform's NI ingress
//!    capacity, so the authors' accepted workload cannot have been uniform
//!    at that size. A log-uniform draw (most connections light, a few
//!    heavy) matches typical SoC traffic and fits the platform.
//! 2. **Feasibility-aware draws.** Every candidate connection is charged
//!    an estimated slot count (the larger of its bandwidth minimum and the
//!    slots its deadline forces) against a per-link budget along its XY
//!    route, and redrawn if any link would exceed the budget. Latency
//!    requirements are clamped to what any allocator could physically
//!    achieve for the drawn path (pipeline delay plus a 2-slot gap).

use crate::app::{SystemSpec, SystemSpecBuilder};
use crate::config::NocConfig;
use crate::ids::{IpId, NiId};
use crate::topology::Topology;
use crate::traffic::Bandwidth;
use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a random workload could not be drawn.
///
/// Returned by [`try_random_workload`]; design-space sweeps treat this as
/// a data point (the platform cannot carry the requested traffic profile)
/// rather than a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// No feasible draw was found for the `connection`-th connection
    /// within the attempt budget: every candidate either exceeded a
    /// per-link slot budget or monopolised the slot table.
    InfeasibleDraw {
        /// Zero-based index of the connection that could not be drawn.
        connection: u32,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InfeasibleDraw { connection } => write!(
                f,
                "could not draw a feasible connection #{connection}; lower the load"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Parameters of a random workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Number of applications to divide the connections across.
    pub apps: u32,
    /// Number of connections to draw.
    pub connections: u32,
    /// Number of IP cores to place (round-robin over NIs, then random).
    pub ips: u32,
    /// Minimum contracted bandwidth in MB/s.
    pub bw_min_mb: u64,
    /// Maximum contracted bandwidth in MB/s.
    pub bw_max_mb: u64,
    /// Minimum latency requirement in ns (clamped up if infeasible).
    pub lat_min_ns: u64,
    /// Maximum latency requirement in ns.
    pub lat_max_ns: u64,
    /// Message size used by the traffic generators, in bytes.
    pub message_bytes: u32,
    /// Per-NI slot budget as a fraction of the slot table that the random
    /// draw may commit (leaving headroom for allocation inefficiency).
    pub ni_load_cap: f64,
}

impl WorkloadParams {
    /// The paper's Section VII experiment parameters.
    #[must_use]
    pub fn paper() -> Self {
        WorkloadParams {
            apps: 4,
            connections: 200,
            ips: 70,
            bw_min_mb: 10,
            bw_max_mb: 500,
            lat_min_ns: 35,
            lat_max_ns: 500,
            message_bytes: 64,
            ni_load_cap: 0.6,
        }
    }
}

impl WorkloadParams {
    /// The lighter profile used by the thousand-connection scaled
    /// benchmarks: log-uniform 10–100 MB/s, 300–3000 ns deadlines,
    /// half-table link budget.
    #[must_use]
    pub fn scaled() -> Self {
        WorkloadParams {
            apps: 4,
            connections: 1_000,
            ips: 2,
            bw_min_mb: 10,
            bw_max_mb: 100,
            lat_min_ns: 300,
            lat_max_ns: 3000,
            message_bytes: 64,
            ni_load_cap: 0.5,
        }
    }

    /// The mega-mesh profile for 16×16–32×32 platforms at 10k–100k
    /// connections: same light bandwidths as [`scaled`](Self::scaled)
    /// but with deadlines relaxed to 1000–10000 ns so that connections
    /// crossing a large mesh (whose physical latency floor alone runs to
    /// hundreds of ns) do not force slot-table-monopolising injection
    /// gaps and get rejected by the feasibility filter.
    #[must_use]
    pub fn mega() -> Self {
        WorkloadParams {
            lat_min_ns: 1_000,
            lat_max_ns: 10_000,
            ..WorkloadParams::scaled()
        }
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams::paper()
    }
}

/// How the random draw picks each connection's destination — uniform by
/// default, or one of the classic adversarial NoC patterns used to put
/// recovery and admission under pressure (the fault benchmarks run the
/// same platform under all four).
///
/// Adversarial profiles are deterministic per seed like everything else
/// here, but cannot be combined with [`WorkloadBuilder::tiles`] locality
/// (they prescribe their own destination structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficProfile {
    /// Destination drawn uniformly over all IPs — reproduces the
    /// historical generators bit-for-bit (identical rng draw sequence).
    #[default]
    Uniform,
    /// Half the draws target one of `spots` evenly spaced hotspot IPs,
    /// half stay uniform: a few NIs saturate while the rest idle.
    Hotspot {
        /// Number of hotspot IPs (evenly spaced over the placed IPs).
        spots: u32,
    },
    /// Matrix-transpose traffic on a square mesh: a source at router
    /// `(x, y)` sends to an IP at router `(y, x)` — maximal bisection
    /// pressure along the diagonal.
    Transpose,
    /// Coordinate-complement traffic: a source at router `(x, y)` sends
    /// to an IP at router `(cols-1-x, rows-1-y)` — every connection
    /// crosses the mesh centre.
    BitComplement,
}

/// One entry point for every random workload in the repo: the paper's
/// Section VII platform, the scaled benchmark meshes and the mega-mesh
/// (16×16–32×32, 10k–100k connection) regime are all points in this
/// builder's parameter space, so new configurations no longer need a new
/// ad-hoc constructor signature.
///
/// Construct with [`WorkloadBuilder::mesh`], adjust knobs, then call
/// [`build`](Self::build) (panicking) or [`try_build`](Self::try_build)
/// (error-reporting). The builder funnels into the same
/// [`try_random_workload_with`] core as the historical constructors, so
/// for equal parameters the random draw sequence — and therefore every
/// pinned golden workload — is bit-identical.
///
/// # Examples
///
/// The paper's platform, via the builder:
///
/// ```
/// use aelite_spec::generate::{paper_workload, WorkloadBuilder, WorkloadParams};
///
/// let built = WorkloadBuilder::mesh(4, 3, 4)
///     .params(WorkloadParams::paper())
///     .seed(42)
///     .build();
/// assert_eq!(built.connections(), paper_workload(42).connections());
/// ```
///
/// A mega-mesh regional workload:
///
/// ```no_run
/// use aelite_spec::generate::WorkloadBuilder;
///
/// let spec = WorkloadBuilder::mesh(16, 16, 4)
///     .mega_traffic()
///     .connections(10_000)
///     .tiles(8, 8)
///     .seed(7)
///     .build();
/// assert_eq!(spec.connections().len(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    cols: u32,
    rows: u32,
    nis_per_router: u32,
    config: NocConfig,
    params: WorkloadParams,
    ips: Option<u32>,
    locality: Option<(u32, u32)>,
    profile: TrafficProfile,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a workload on a `cols × rows` mesh with `nis_per_router`
    /// NIs per router, the paper's NoC configuration, the
    /// [`WorkloadParams::scaled`] traffic profile, one IP per NI, no
    /// locality constraint, and seed 0.
    #[must_use]
    pub fn mesh(cols: u32, rows: u32, nis_per_router: u32) -> Self {
        WorkloadBuilder {
            cols,
            rows,
            nis_per_router,
            config: NocConfig::paper_default(),
            params: WorkloadParams::scaled(),
            ips: None,
            locality: None,
            profile: TrafficProfile::Uniform,
            seed: 0,
        }
    }

    /// Replaces the whole traffic-parameter block (IP count included —
    /// subsequent [`ips`](Self::ips)/[`connections`](Self::connections)
    /// calls still override individual fields).
    #[must_use]
    pub fn params(mut self, params: WorkloadParams) -> Self {
        self.ips = Some(params.ips);
        self.params = params;
        self
    }

    /// Switches to the [`WorkloadParams::mega`] traffic profile
    /// (mega-mesh deadlines; keeps the connection count and any explicit
    /// IP count already set).
    #[must_use]
    pub fn mega_traffic(mut self) -> Self {
        let connections = self.params.connections;
        self.params = WorkloadParams {
            connections,
            ..WorkloadParams::mega()
        };
        self
    }

    /// Sets the number of connections to draw.
    #[must_use]
    pub fn connections(mut self, connections: u32) -> Self {
        self.params.connections = connections;
        self
    }

    /// Sets the number of IP cores (default: one per NI).
    #[must_use]
    pub fn ips(mut self, ips: u32) -> Self {
        self.ips = Some(ips);
        self
    }

    /// Sets the number of applications the connections divide across.
    #[must_use]
    pub fn apps(mut self, apps: u32) -> Self {
        self.params.apps = apps;
        self
    }

    /// Sets the contracted-bandwidth range in MB/s (log-uniform draw).
    #[must_use]
    pub fn bandwidth_mb(mut self, min: u64, max: u64) -> Self {
        self.params.bw_min_mb = min;
        self.params.bw_max_mb = max;
        self
    }

    /// Sets the latency-requirement range in ns.
    #[must_use]
    pub fn latency_ns(mut self, min: u64, max: u64) -> Self {
        self.params.lat_min_ns = min;
        self.params.lat_max_ns = max;
        self
    }

    /// Sets the message size used by the traffic generators, in bytes.
    #[must_use]
    pub fn message_bytes(mut self, bytes: u32) -> Self {
        self.params.message_bytes = bytes;
        self
    }

    /// Sets the fraction of each link's slot table the draw may commit.
    #[must_use]
    pub fn ni_load_cap(mut self, cap: f64) -> Self {
        self.params.ni_load_cap = cap;
        self
    }

    /// Constrains every connection to one tile of a `tiles_x × tiles_y`
    /// tiling of the router grid (regional locality — the shape the
    /// sharded admission engine and the mega-mesh regime scale on).
    #[must_use]
    pub fn tiles(mut self, tiles_x: u32, tiles_y: u32) -> Self {
        self.locality = Some((tiles_x, tiles_y));
        self
    }

    /// Sets the destination-draw profile (default
    /// [`TrafficProfile::Uniform`]; the adversarial profiles are the
    /// fault benchmarks' pressure workloads).
    #[must_use]
    pub fn profile(mut self, profile: TrafficProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Replaces the NoC configuration (slot table size, flit width, …).
    #[must_use]
    pub fn config(mut self, config: NocConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides just the TDM slot-table size of the configuration —
    /// large meshes with many connections per link need the headroom of
    /// a bigger table.
    #[must_use]
    pub fn slot_table_size(mut self, slots: u32) -> Self {
        self.config.slot_table_size = slots;
        self
    }

    /// Sets the random seed (workloads are deterministic per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The parameters the build will use (IP count resolved).
    fn resolved(&self) -> (Topology, WorkloadParams) {
        let topo = Topology::mesh(self.cols, self.rows, self.nis_per_router);
        let ips = self.ips.unwrap_or((topo.ni_count() as u32).max(2));
        let params = WorkloadParams { ips, ..self.params };
        (topo, params)
    }

    /// Builds the workload, panicking on parameter errors or an
    /// infeasible draw (use [`try_build`](Self::try_build) to observe
    /// infeasibility as data).
    ///
    /// # Panics
    ///
    /// Panics as [`try_random_workload_with`], or when the draw is
    /// infeasible.
    #[must_use]
    pub fn build(self) -> SystemSpec {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the workload, reporting an infeasible draw as an error.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InfeasibleDraw`] as
    /// [`try_random_workload_with`].
    ///
    /// # Panics
    ///
    /// Panics on parameter errors that no retry can fix (fewer than 2
    /// IPs, zero connections/apps, invalid ranges).
    pub fn try_build(self) -> Result<SystemSpec, WorkloadError> {
        let (topo, params) = self.resolved();
        try_random_workload_profiled(
            topo,
            self.config,
            params,
            self.seed,
            self.locality,
            self.profile,
        )
    }
}

/// Generates the paper's experiment: 4×3 concentrated mesh (4 NIs per
/// router), 70 IPs, 4 applications, 200 random connections.
///
/// Deterministic for a given `seed`.
///
/// # Examples
///
/// ```
/// use aelite_spec::generate::paper_workload;
///
/// let spec = paper_workload(42);
/// assert_eq!(spec.connections().len(), 200);
/// assert_eq!(spec.ip_count(), 70);
/// assert_eq!(spec.apps().len(), 4);
/// assert_eq!(spec.topology().router_count(), 12);
/// ```
/// Thin wrapper over [`WorkloadBuilder`] (kept for the many existing
/// call sites; prefer the builder in new code).
#[must_use]
pub fn paper_workload(seed: u64) -> SystemSpec {
    WorkloadBuilder::mesh(4, 3, 4)
        .params(WorkloadParams::paper())
        .seed(seed)
        .build()
}

/// Generates a synthetic scaled-up workload on a `cols × rows` mesh with
/// `nis_per_router` NIs per router and one IP per NI: the
/// thousand-connection regime the allocator-throughput benchmarks track
/// (`BENCH_ALLOC.json`), beyond the paper's 200-connection platform.
///
/// The draw keeps the paper generator's feasibility rules but with a
/// lighter per-connection profile (log-uniform 10–100 MB/s, 300–3000 ns
/// deadlines, half-table link budget) so that meshes from 4×4/500
/// connections to 8×8/2000 connections stay allocatable.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics as [`random_workload`] (fewer than 2 IPs, zero connections).
/// Thin wrapper over [`WorkloadBuilder`] (kept for the many existing
/// call sites; prefer the builder in new code — mega-mesh configs use
/// [`WorkloadBuilder::mega_traffic`] rather than a fourth signature).
#[must_use]
pub fn scaled_workload(
    cols: u32,
    rows: u32,
    nis_per_router: u32,
    connections: u32,
    seed: u64,
) -> SystemSpec {
    WorkloadBuilder::mesh(cols, rows, nis_per_router)
        .connections(connections)
        .seed(seed)
        .build()
}

/// [`scaled_workload`] with **regional locality**: the router grid is
/// tiled `tiles_x × tiles_y` and every connection is drawn with both
/// endpoints inside one tile. Because XY/YX routes never leave their
/// endpoints' bounding box — and a tile is a contiguous grid rectangle —
/// a matching shard tiling with the route bound capped at the XY/YX pair
/// classifies every such connection intra-shard: this is the workload
/// shape the sharded admission engine scales on (`BENCH_SHARD.json`).
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics as [`random_workload`], or if a tile ends up with fewer than
/// two IPs (no intra-tile pair can be drawn).
/// Thin wrapper over [`WorkloadBuilder`] (kept for the many existing
/// call sites; prefer the builder in new code — mega-mesh configs use
/// [`WorkloadBuilder::mega_traffic`] rather than a fourth signature).
#[must_use]
pub fn regional_workload(
    cols: u32,
    rows: u32,
    nis_per_router: u32,
    connections: u32,
    seed: u64,
    tiles_x: u32,
    tiles_y: u32,
) -> SystemSpec {
    WorkloadBuilder::mesh(cols, rows, nis_per_router)
        .connections(connections)
        .tiles(tiles_x, tiles_y)
        .seed(seed)
        .build()
}

/// Generates a random workload on an arbitrary platform.
///
/// See the [module documentation](self) for the draw's feasibility rules.
///
/// # Panics
///
/// Panics if `params` asks for fewer than 2 IPs (no connection can be
/// drawn), zero connections/apps, or a bandwidth range with
/// `bw_min_mb > bw_max_mb`.
#[must_use]
pub fn random_workload(
    topo: Topology,
    config: NocConfig,
    params: WorkloadParams,
    seed: u64,
) -> SystemSpec {
    try_random_workload(topo, config, params, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// [`random_workload`] that reports an infeasible draw as an error
/// instead of panicking — the entry point for design-space sweeps, where
/// an overloaded grid corner is a result, not a bug.
///
/// # Errors
///
/// Returns [`WorkloadError::InfeasibleDraw`] when some connection cannot
/// be drawn within the per-connection attempt budget.
///
/// # Panics
///
/// Panics on parameter errors that no retry can fix: fewer than 2 IPs,
/// zero connections/apps, or invalid bandwidth/latency ranges.
pub fn try_random_workload(
    topo: Topology,
    config: NocConfig,
    params: WorkloadParams,
    seed: u64,
) -> Result<SystemSpec, WorkloadError> {
    try_random_workload_with(topo, config, params, seed, None)
}

/// [`try_random_workload`] with an optional **locality constraint**:
/// with `locality: Some((tiles_x, tiles_y))` the router grid is tiled
/// and every connection's destination is drawn from the IPs of its
/// source's tile, producing region-local traffic (see
/// [`regional_workload`]). `None` reproduces [`try_random_workload`]
/// bit-for-bit (identical rng draw sequence).
///
/// # Errors
///
/// Returns [`WorkloadError::InfeasibleDraw`] as [`try_random_workload`]
/// — a tile with fewer than two IPs makes every draw of that tile
/// infeasible.
///
/// # Panics
///
/// Panics as [`try_random_workload`], or if `locality` is requested on
/// a non-mesh topology.
pub fn try_random_workload_with(
    topo: Topology,
    config: NocConfig,
    params: WorkloadParams,
    seed: u64,
    locality: Option<(u32, u32)>,
) -> Result<SystemSpec, WorkloadError> {
    try_random_workload_profiled(
        topo,
        config,
        params,
        seed,
        locality,
        TrafficProfile::Uniform,
    )
}

/// [`try_random_workload_with`] with a destination-draw
/// [`TrafficProfile`]: the full generator core every other entry point
/// funnels into. [`TrafficProfile::Uniform`] reproduces
/// [`try_random_workload_with`] bit-for-bit (identical rng draw
/// sequence); the adversarial profiles replace the uniform destination
/// draw with their own structure and keep everything else — bandwidth
/// and latency draws, feasibility budgeting, app assignment — unchanged.
///
/// # Errors
///
/// Returns [`WorkloadError::InfeasibleDraw`] as
/// [`try_random_workload`] — adversarial profiles concentrate load, so
/// they hit the per-link budget at connection counts a uniform draw
/// carries easily.
///
/// # Panics
///
/// Panics as [`try_random_workload_with`]; additionally if an
/// adversarial profile is combined with a locality constraint, if
/// [`TrafficProfile::Hotspot`] asks for zero spots or more spots than
/// IPs, if [`TrafficProfile::Transpose`] runs on a non-square or
/// non-mesh topology, or if [`TrafficProfile::BitComplement`] runs on a
/// non-mesh topology.
pub fn try_random_workload_profiled(
    topo: Topology,
    config: NocConfig,
    params: WorkloadParams,
    seed: u64,
    locality: Option<(u32, u32)>,
    profile: TrafficProfile,
) -> Result<SystemSpec, WorkloadError> {
    assert!(
        profile == TrafficProfile::Uniform || locality.is_none(),
        "adversarial traffic profiles prescribe their own destination \
         structure and cannot be combined with tile locality"
    );
    assert!(params.ips >= 2, "need at least two IPs");
    assert!(params.apps >= 1, "need at least one application");
    assert!(params.connections >= 1, "need at least one connection");
    assert!(
        params.bw_min_mb <= params.bw_max_mb && params.bw_min_mb > 0,
        "invalid bandwidth range"
    );
    assert!(
        params.lat_min_ns <= params.lat_max_ns,
        "invalid latency range"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let ni_count = topo.ni_count() as u32;
    let mut b = SystemSpecBuilder::new(topo, config);

    let apps: Vec<_> = (0..params.apps)
        .map(|i| b.add_app(format!("app{i}")))
        .collect();

    // Spread IPs over NIs: one per NI round-robin first, extras random.
    let mut ips: Vec<IpId> = Vec::with_capacity(params.ips as usize);
    for i in 0..params.ips {
        let ni = if i < ni_count {
            NiId::new(i)
        } else {
            NiId::new(rng.gen_range(0..ni_count))
        };
        ips.push(b.add_ip_at(ni));
    }

    // Tile pools for the locality constraint: which tile each IP's
    // router falls in, and the IPs of each tile.
    let regional: Option<(Vec<Vec<IpId>>, Vec<usize>)> = locality.map(|(tx, ty)| {
        let (cols, rows) = b
            .topology()
            .mesh_dims()
            .expect("regional workloads require a mesh topology");
        let mut tile_ips: Vec<Vec<IpId>> = vec![Vec::new(); (tx * ty) as usize];
        let mut ip_tile = vec![0usize; ips.len()];
        for (i, &ip) in ips.iter().enumerate() {
            let r = b.topology().ni_router(b.spec_ni(ip));
            let (x, y) = b.topology().coords(r).expect("mesh router has coordinates");
            let t = (y * ty / rows * tx + x * tx / cols) as usize;
            ip_tile[i] = t;
            tile_ips[t].push(ip);
        }
        (tile_ips, ip_tile)
    });

    // Destination pools for the adversarial profiles: the hotspot IP
    // list, or the IPs at each router for the coordinate patterns. No
    // rng draw happens here, so the Uniform sequence is untouched.
    let hotspots: Vec<IpId> = match profile {
        TrafficProfile::Hotspot { spots } => {
            assert!(
                spots >= 1 && (spots as usize) <= ips.len(),
                "hotspot count must be in 1..=ips"
            );
            (0..spots as usize)
                .map(|k| ips[k * ips.len() / spots as usize])
                .collect()
        }
        _ => Vec::new(),
    };
    let router_ips: Vec<Vec<IpId>> = match profile {
        TrafficProfile::Transpose | TrafficProfile::BitComplement => {
            let (cols, rows) = b
                .topology()
                .mesh_dims()
                .expect("coordinate traffic profiles require a mesh topology");
            if profile == TrafficProfile::Transpose {
                assert_eq!(cols, rows, "transpose traffic requires a square mesh");
            }
            let mut map = vec![Vec::new(); b.topology().router_count()];
            for &ip in &ips {
                map[b.topology().ni_router(b.spec_ni(ip)).index()].push(ip);
            }
            map
        }
        _ => Vec::new(),
    };

    // Remaining slot budget per directed link. A connection consumes its
    // estimated slot count on every link of its XY route; drawing against
    // this budget keeps the workload allocatable (see module docs).
    let link_budget = (f64::from(config.slot_table_size) * params.ni_load_cap).floor() as i64;
    let mut link_left = vec![link_budget; b.topology().link_count()];

    for c in 0..params.connections {
        // Log-uniform bandwidth in [bw_min, bw_max] MB/s.
        let (lo, hi) = (params.bw_min_mb as f64, params.bw_max_mb as f64);
        let mut accepted = None;
        for _attempt in 0..5_000 {
            let bw_mb = (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp();
            let bw = Bandwidth::from_bytes_per_sec((bw_mb * 1e6) as u64);
            let si = rng.gen_range(0..ips.len());
            let src = ips[si];
            let dst = match &regional {
                None => match profile {
                    TrafficProfile::Uniform => ips[rng.gen_range(0..ips.len())],
                    TrafficProfile::Hotspot { .. } => {
                        // Classic hotspot mix: half the draws pile onto
                        // the spots, half stay uniform (a pure hotspot
                        // draw would exhaust the spots' NI budgets and
                        // make every workload infeasible).
                        if rng.gen::<f64>() < 0.5 {
                            hotspots[rng.gen_range(0..hotspots.len())]
                        } else {
                            ips[rng.gen_range(0..ips.len())]
                        }
                    }
                    TrafficProfile::Transpose | TrafficProfile::BitComplement => {
                        let (cols, rows) = b.topology().mesh_dims().expect("mesh checked above");
                        let r = b.topology().ni_router(b.spec_ni(src));
                        let (x, y) = b.topology().coords(r).expect("mesh router");
                        let (gx, gy) = if profile == TrafficProfile::Transpose {
                            (y, x)
                        } else {
                            (cols - 1 - x, rows - 1 - y)
                        };
                        let target = b.topology().router_at(gx, gy).expect("mesh router");
                        let pool = &router_ips[target.index()];
                        if pool.is_empty() {
                            continue; // no IP at the prescribed router
                        }
                        pool[rng.gen_range(0..pool.len())]
                    }
                },
                Some((tile_ips, ip_tile)) => {
                    let pool = &tile_ips[ip_tile[si]];
                    if pool.len() < 2 {
                        continue; // lone-IP tile: no intra-tile pair
                    }
                    pool[rng.gen_range(0..pool.len())]
                }
            };
            if src == dst {
                continue;
            }
            let (sni, dni) = (b.spec_ni(src), b.spec_ni(dst));
            if sni == dni {
                continue; // keep all traffic on the network, as in the paper
            }

            // Per-flit pipeline delay along the XY route: one slot per
            // link (plus pipeline stages) across hops+2 links.
            let n_links = u64::from(router_hops(b.topology(), sni, dni) + 2);
            let pipeline_cycles =
                n_links * u64::from(config.slots_per_hop()) * u64::from(config.flit_words);

            // Latency requirement: drawn, then clamped so that at least a
            // 2-slot injection gap remains physically achievable.
            let floor_cycles = pipeline_cycles + 2 * u64::from(config.slot_cycles());
            let floor_ns = (floor_cycles as f64 * config.cycle_ns()).ceil() as u64;
            let drawn = rng.gen_range(params.lat_min_ns..=params.lat_max_ns);
            let lat = drawn.max(floor_ns);

            // Slots this connection will need: the bandwidth minimum, or
            // more when the deadline forces a tighter injection gap
            // (mirrors the allocator's latency-aware slot addition).
            let budget_cycles = (lat as f64 / config.cycle_ns()).floor() as u64;
            let wait_cycles = budget_cycles.saturating_sub(pipeline_cycles);
            let allowed_gap = (wait_cycles / u64::from(config.slot_cycles())).max(1) as u32;
            let lat_slots = config.slot_table_size.div_ceil(allowed_gap);
            let est = i64::from(config.slots_for(bw).max(lat_slots).max(1));

            // Reject draws whose deadline would monopolise the table: a
            // connection may claim at most a quarter of the slots. Tight
            // deadlines therefore only survive on short paths or get
            // redrawn — keeping each requirement individually honourable.
            if est > i64::from(config.slot_table_size / 4) {
                continue;
            }

            // Budget check along the XY route.
            let links = xy_links(b.topology(), sni, dni);
            if links.iter().any(|&l| link_left[l] < est) {
                continue;
            }
            for &l in &links {
                link_left[l] -= est;
            }
            accepted = Some((src, dst, bw, lat));
            break;
        }
        let Some((src, dst, bw, lat)) = accepted else {
            return Err(WorkloadError::InfeasibleDraw { connection: c });
        };

        let app = apps[(c % params.apps) as usize];
        b.add_connection_with(
            app,
            src,
            dst,
            bw,
            lat,
            crate::traffic::TrafficPattern::ConstantRate,
            params.message_bytes,
        );
    }
    Ok(b.build())
}

/// Router-to-router hop count between the routers of two NIs (Manhattan on
/// meshes, 1 for distinct routers otherwise).
fn router_hops(topo: &Topology, a: NiId, b: NiId) -> u32 {
    let (ra, rb) = (topo.ni_router(a), topo.ni_router(b));
    match (topo.coords(ra), topo.coords(rb)) {
        (Some((xa, ya)), Some((xb, yb))) => xa.abs_diff(xb) + ya.abs_diff(yb),
        _ => u32::from(ra != rb),
    }
}

/// The link indices of the XY route from `a` to `b`: NI ingress, one link
/// per router hop, and the egress into `b`. Falls back to just the NI
/// links on non-mesh topologies.
fn xy_links(topo: &Topology, a: NiId, b: NiId) -> Vec<usize> {
    use crate::topology::PortTarget;
    let mut links = vec![topo.ni_ingress_link(a).index()];
    let mut router = topo.ni_router(a);
    let goal = topo.ni_router(b);
    if let (Some((mut x, mut y)), Some((tx, ty))) = (topo.coords(router), topo.coords(goal)) {
        while x != tx {
            let nx = if x < tx { x + 1 } else { x - 1 };
            let next = topo.router_at(nx, y).expect("mesh neighbour");
            let port = topo
                .port_towards(router, PortTarget::Router(next))
                .expect("mesh port");
            links.push(topo.out_link(router, port).expect("mesh link").index());
            router = next;
            x = nx;
        }
        while y != ty {
            let ny = if y < ty { y + 1 } else { y - 1 };
            let next = topo.router_at(x, ny).expect("mesh neighbour");
            let port = topo
                .port_towards(router, PortTarget::Router(next))
                .expect("mesh port");
            links.push(topo.out_link(router, port).expect("mesh link").index());
            router = next;
            y = ny;
        }
    }
    links.push(topo.ni_egress_link(b).index());
    links
}

impl SystemSpecBuilder {
    /// The NI an already-placed IP sits on (helper for the generator).
    fn spec_ni(&self, ip: IpId) -> NiId {
        // The builder's mapping is private to `app.rs`; expose through a
        // crate-internal accessor.
        self.mapping_for(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    #[test]
    fn paper_workload_matches_paper_counts() {
        let spec = paper_workload(1);
        assert_eq!(spec.connections().len(), 200);
        assert_eq!(spec.ip_count(), 70);
        assert_eq!(spec.apps().len(), 4);
        assert_eq!(spec.topology().router_count(), 12);
        assert_eq!(spec.topology().ni_count(), 48);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = paper_workload(7);
        let b = paper_workload(7);
        assert_eq!(a.connections(), b.connections());
        let c = paper_workload(8);
        assert_ne!(a.connections(), c.connections());
    }

    #[test]
    fn bandwidths_stay_in_range() {
        let spec = paper_workload(3);
        for c in spec.connections() {
            let mb = c.bandwidth.mbytes_per_sec_f64();
            assert!((10.0..=500.0).contains(&mb), "{mb} MB/s out of range");
        }
    }

    #[test]
    fn latencies_stay_in_range_and_feasible() {
        let spec = paper_workload(3);
        let cfg = spec.config();
        for c in spec.connections() {
            assert!(c.max_latency_ns >= 35, "{}", c.max_latency_ns);
            // Clamping may exceed 500 only when the physical floor demands
            // it; the floor on a 4x3 mesh is well under 100 ns at 500 MHz.
            assert!(c.max_latency_ns <= 500, "{}", c.max_latency_ns);
            let _ = cfg;
        }
    }

    #[test]
    fn connections_divide_across_apps_roughly_evenly() {
        let spec = paper_workload(5);
        for app in 0..4 {
            assert_eq!(spec.app_connections(AppId::new(app)).count(), 50);
        }
    }

    #[test]
    fn no_connection_stays_on_one_ni() {
        let spec = paper_workload(11);
        for c in spec.connections() {
            assert_ne!(spec.ip_ni(c.src), spec.ip_ni(c.dst), "{c}");
        }
    }

    #[test]
    fn ni_slot_budget_respected_by_draw() {
        // The per-link budget implies a per-NI bandwidth-slot budget on
        // the ingress and egress links (est >= bandwidth slots).
        let spec = paper_workload(13);
        let cfg = spec.config();
        let cap = (f64::from(cfg.slot_table_size) * 0.6).floor() as i64;
        let mut ingress = vec![0i64; spec.topology().ni_count()];
        let mut egress = vec![0i64; spec.topology().ni_count()];
        for c in spec.connections() {
            ingress[spec.ip_ni(c.src).index()] += i64::from(cfg.slots_for(c.bandwidth));
            egress[spec.ip_ni(c.dst).index()] += i64::from(cfg.slots_for(c.bandwidth));
        }
        for ni in 0..spec.topology().ni_count() {
            assert!(ingress[ni] <= cap, "NI{ni} ingress {} > {cap}", ingress[ni]);
            assert!(egress[ni] <= cap, "NI{ni} egress {} > {cap}", egress[ni]);
        }
    }

    #[test]
    fn latencies_clear_physical_floor() {
        let spec = paper_workload(21);
        let cfg = spec.config();
        for c in spec.connections() {
            // Even the tightest deadline leaves room for the pipeline and
            // a 2-slot injection gap on *some* path (the XY route).
            assert!(
                c.max_latency_ns as f64
                    >= (2.0 * cfg.slot_cycles() as f64 + 2.0 * cfg.flit_words as f64)
                        * cfg.cycle_ns(),
                "{c}"
            );
        }
    }

    #[test]
    fn small_custom_workload() {
        let topo = Topology::mesh(2, 2, 1);
        let params = WorkloadParams {
            apps: 2,
            connections: 6,
            ips: 4,
            bw_min_mb: 5,
            bw_max_mb: 40,
            lat_min_ns: 100,
            lat_max_ns: 900,
            message_bytes: 32,
            ni_load_cap: 0.9,
        };
        let spec = random_workload(topo, NocConfig::paper_default(), params, 99);
        assert_eq!(spec.connections().len(), 6);
        assert_eq!(spec.apps().len(), 2);
    }

    #[test]
    fn scaled_workload_matches_requested_shape() {
        let spec = scaled_workload(4, 4, 4, 500, 1);
        assert_eq!(spec.connections().len(), 500);
        assert_eq!(spec.topology().router_count(), 16);
        assert_eq!(spec.topology().ni_count(), 64);
        assert_eq!(spec.ip_count(), 64);
        // Deterministic per seed.
        let again = scaled_workload(4, 4, 4, 500, 1);
        assert_eq!(spec.connections(), again.connections());
    }

    #[test]
    fn builder_reproduces_every_legacy_constructor_bit_for_bit() {
        let paper = WorkloadBuilder::mesh(4, 3, 4)
            .params(WorkloadParams::paper())
            .seed(42)
            .build();
        assert_eq!(paper.connections(), paper_workload(42).connections());

        let scaled = WorkloadBuilder::mesh(4, 4, 4)
            .connections(500)
            .seed(9)
            .build();
        assert_eq!(
            scaled.connections(),
            scaled_workload(4, 4, 4, 500, 9).connections()
        );

        let regional = WorkloadBuilder::mesh(4, 4, 4)
            .connections(400)
            .tiles(2, 2)
            .seed(9)
            .build();
        assert_eq!(
            regional.connections(),
            regional_workload(4, 4, 4, 400, 9, 2, 2).connections()
        );
    }

    #[test]
    fn builder_knobs_land_in_the_spec() {
        let spec = WorkloadBuilder::mesh(3, 3, 2)
            .mega_traffic()
            .connections(50)
            .apps(2)
            .ips(10)
            .bandwidth_mb(5, 50)
            .message_bytes(32)
            .slot_table_size(64)
            .seed(5)
            .build();
        assert_eq!(spec.connections().len(), 50);
        assert_eq!(spec.apps().len(), 2);
        assert_eq!(spec.ip_count(), 10);
        assert_eq!(spec.config().slot_table_size, 64);
        for c in spec.connections() {
            let mb = c.bandwidth.mbytes_per_sec_f64();
            assert!((5.0..=50.0).contains(&mb), "{mb} MB/s out of range");
            assert!(c.max_latency_ns >= 1_000, "{}", c.max_latency_ns);
        }
    }

    #[test]
    fn mega_profile_relaxes_deadlines_only() {
        let s = WorkloadParams::scaled();
        let m = WorkloadParams::mega();
        assert_eq!((m.lat_min_ns, m.lat_max_ns), (1_000, 10_000));
        assert_eq!((m.bw_min_mb, m.bw_max_mb), (s.bw_min_mb, s.bw_max_mb));
        assert_eq!(m.ni_load_cap, s.ni_load_cap);
    }

    #[test]
    fn uniform_profile_is_the_legacy_draw_bit_for_bit() {
        let plain = WorkloadBuilder::mesh(4, 4, 2).connections(200).seed(17);
        let profiled = plain.clone().profile(TrafficProfile::Uniform);
        assert_eq!(plain.build().connections(), profiled.build().connections());
    }

    #[test]
    fn hotspot_profile_concentrates_traffic_deterministically() {
        let build = || {
            WorkloadBuilder::mesh(4, 4, 2)
                .connections(150)
                .profile(TrafficProfile::Hotspot { spots: 4 })
                .seed(23)
                .build()
        };
        let spec = build();
        assert_eq!(spec.connections(), build().connections(), "not pinned");
        // The 4 spots sit on 4 of the 32 NIs; uniform traffic would land
        // ~12% of destinations there, the hotspot mix well over 30%.
        let mut by_ni = vec![0u32; spec.topology().ni_count()];
        for c in spec.connections() {
            by_ni[spec.ip_ni(c.dst).index()] += 1;
        }
        let mut counts = by_ni.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top4: u32 = counts[..4].iter().sum();
        assert!(
            u64::from(top4) * 100 / spec.connections().len() as u64 >= 30,
            "top-4 NIs hold only {top4}/150 destinations"
        );
    }

    #[test]
    fn transpose_profile_prescribes_the_mirror_router() {
        let build = || {
            WorkloadBuilder::mesh(4, 4, 2)
                .connections(100)
                .profile(TrafficProfile::Transpose)
                .seed(31)
                .build()
        };
        let spec = build();
        assert_eq!(spec.connections(), build().connections(), "not pinned");
        let topo = spec.topology();
        for c in spec.connections() {
            let (x, y) = topo.coords(topo.ni_router(spec.ip_ni(c.src))).unwrap();
            let (dx, dy) = topo.coords(topo.ni_router(spec.ip_ni(c.dst))).unwrap();
            assert_eq!((dx, dy), (y, x), "{c} is not transpose traffic");
        }
    }

    #[test]
    fn bit_complement_profile_crosses_the_mesh_centre() {
        let build = || {
            WorkloadBuilder::mesh(4, 3, 2)
                .connections(80)
                .profile(TrafficProfile::BitComplement)
                .seed(37)
                .build()
        };
        let spec = build();
        assert_eq!(spec.connections(), build().connections(), "not pinned");
        let topo = spec.topology();
        for c in spec.connections() {
            let (x, y) = topo.coords(topo.ni_router(spec.ip_ni(c.src))).unwrap();
            let (dx, dy) = topo.coords(topo.ni_router(spec.ip_ni(c.dst))).unwrap();
            assert_eq!((dx, dy), (3 - x, 2 - y), "{c} is not complement traffic");
        }
    }

    #[test]
    #[should_panic(expected = "cannot be combined with tile locality")]
    fn adversarial_profile_with_tiles_rejected() {
        let _ = WorkloadBuilder::mesh(4, 4, 2)
            .connections(10)
            .tiles(2, 2)
            .profile(TrafficProfile::Transpose)
            .build();
    }

    #[test]
    #[should_panic(expected = "square mesh")]
    fn transpose_on_rectangular_mesh_rejected() {
        let _ = WorkloadBuilder::mesh(4, 3, 2)
            .connections(10)
            .profile(TrafficProfile::Transpose)
            .build();
    }

    #[test]
    fn infeasible_draw_is_an_error_not_a_panic() {
        // Two IPs on a 2-router mesh, but a bandwidth floor far above the
        // per-link slot budget: no connection can ever be drawn.
        let topo = Topology::mesh(2, 1, 1);
        let params = WorkloadParams {
            apps: 1,
            connections: 1,
            ips: 2,
            bw_min_mb: 1_900,
            bw_max_mb: 2_000,
            lat_min_ns: 10_000,
            lat_max_ns: 10_000,
            message_bytes: 64,
            ni_load_cap: 0.5,
        };
        let err = try_random_workload(topo, NocConfig::paper_default(), params, 1)
            .expect_err("draw must be infeasible");
        assert_eq!(err, WorkloadError::InfeasibleDraw { connection: 0 });
        assert!(err.to_string().contains("connection #0"), "{err}");
    }

    #[test]
    #[should_panic(expected = "at least two IPs")]
    fn single_ip_rejected() {
        let topo = Topology::mesh(1, 1, 1);
        let params = WorkloadParams {
            ips: 1,
            ..WorkloadParams::paper()
        };
        let _ = random_workload(topo, NocConfig::paper_default(), params, 0);
    }
}
