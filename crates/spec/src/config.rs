//! Global NoC configuration: data width, frequency, flit and slot geometry.

use crate::traffic::Bandwidth;
use core::fmt;

/// Parameters shared by every element of one aelite instance.
///
/// The paper fixes the flit size at **3 words** (one slot = one flit = 3
/// cycles) and evaluates data widths of 32–256 bits and frequencies up to
/// ~875 MHz. The slot-table size is a design-time choice made by the
/// allocation flow; all NIs in one NoC use the same table size
/// (Section III: "The TDM table has the same size (or period) throughout
/// the NoC").
///
/// # Examples
///
/// ```
/// use aelite_spec::config::NocConfig;
///
/// let cfg = NocConfig::paper_default();
/// assert_eq!(cfg.data_width_bits, 32);
/// assert_eq!(cfg.flit_words, 3);
/// assert_eq!(cfg.frequency_mhz, 500);
/// // Raw link capacity: 4 bytes * 500 MHz = 2 GB/s.
/// assert_eq!(cfg.raw_link_bandwidth().bytes_per_sec(), 2_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Link/data-path width in bits (one word/phit per cycle).
    pub data_width_bits: u32,
    /// Operating frequency of the (nominally equal) clocks, in MHz.
    pub frequency_mhz: u64,
    /// Words per flit; the paper assumes 3 throughout.
    pub flit_words: u32,
    /// TDM slot-table size (slots per revolution), identical NoC-wide.
    pub slot_table_size: u32,
    /// Per-connection NI receive buffer, in words, governing end-to-end
    /// flow-control credits.
    pub ni_buffer_words: u32,
    /// Mesochronous link pipeline stages per link (paper Section V). Each
    /// stage re-aligns flits to the reader's flit cycle and therefore
    /// costs one TDM slot, shifting downstream reservations accordingly.
    /// `0` models the directly-connected synchronous NoC of Section IV.
    pub link_pipeline_stages: u32,
}

impl NocConfig {
    /// The configuration of the paper's Section VII experiment:
    /// 32-bit data path, 500 MHz, 3-word flits.
    ///
    /// The slot-table size (64) and NI buffering are not stated in the
    /// paper; they are design-flow choices recorded in `DESIGN.md` (a
    /// longer table gives finer bandwidth granularity at the same 3-cycle
    /// slot duration).
    #[must_use]
    pub const fn paper_default() -> Self {
        NocConfig {
            data_width_bits: 32,
            frequency_mhz: 500,
            flit_words: 3,
            slot_table_size: 64,
            ni_buffer_words: 24,
            link_pipeline_stages: 0,
        }
    }

    /// The paper configuration with one mesochronous pipeline stage on
    /// every link (the complete router-with-links of Section V).
    #[must_use]
    pub const fn paper_mesochronous() -> Self {
        let mut cfg = NocConfig::paper_default();
        cfg.link_pipeline_stages = 1;
        cfg
    }

    /// Slots of TDM shift contributed by each link along a path: the link
    /// itself plus its pipeline stages.
    #[must_use]
    pub const fn slots_per_hop(&self) -> u32 {
        1 + self.link_pipeline_stages
    }

    /// Data-path width in whole bytes.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8 bits.
    #[must_use]
    pub fn data_width_bytes(&self) -> u32 {
        assert!(
            self.data_width_bits.is_multiple_of(8),
            "data width must be a whole number of bytes"
        );
        self.data_width_bits / 8
    }

    /// Raw link bandwidth: one word per cycle, headers included.
    #[must_use]
    pub fn raw_link_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            u64::from(self.data_width_bytes()) * self.frequency_mhz * 1_000_000,
        )
    }

    /// Payload words per flit under the conservative single-flit-packet
    /// assumption used for allocation: every flit carries one header word.
    ///
    /// Longer packets amortise the header over more flits; allocation uses
    /// this floor so that contracts hold for any packetisation.
    #[must_use]
    pub fn payload_words_per_flit(&self) -> u32 {
        self.flit_words - 1
    }

    /// Duration of one TDM slot, in clock cycles (= words per flit).
    #[must_use]
    pub fn slot_cycles(&self) -> u32 {
        self.flit_words
    }

    /// Clock cycles for one full slot-table revolution.
    #[must_use]
    pub fn table_cycles(&self) -> u32 {
        self.slot_table_size * self.flit_words
    }

    /// Guaranteed payload bandwidth of a single reserved slot.
    ///
    /// One slot delivers [`payload_words_per_flit`](Self::payload_words_per_flit)
    /// words every table revolution.
    #[must_use]
    pub fn slot_payload_bandwidth(&self) -> Bandwidth {
        let bytes_per_rev =
            u64::from(self.payload_words_per_flit()) * u64::from(self.data_width_bytes());
        let revs_per_sec = self.frequency_mhz * 1_000_000 / u64::from(self.table_cycles());
        Bandwidth::from_bytes_per_sec(bytes_per_rev * revs_per_sec)
    }

    /// Maximum payload bandwidth of a whole link (all slots reserved).
    #[must_use]
    pub fn link_payload_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            self.slot_payload_bandwidth().bytes_per_sec() * u64::from(self.slot_table_size),
        )
    }

    /// The minimum number of slots delivering at least `required`
    /// bandwidth.
    ///
    /// # Examples
    ///
    /// ```
    /// use aelite_spec::config::NocConfig;
    /// use aelite_spec::traffic::Bandwidth;
    ///
    /// let cfg = NocConfig::paper_default();
    /// // One slot carries ~20.8 MB/s at the paper's configuration.
    /// assert_eq!(cfg.slots_for(Bandwidth::from_mbytes_per_sec(10)), 1);
    /// assert_eq!(cfg.slots_for(Bandwidth::from_mbytes_per_sec(100)), 5);
    /// ```
    #[must_use]
    pub fn slots_for(&self, required: Bandwidth) -> u32 {
        let per_slot = self.slot_payload_bandwidth().bytes_per_sec();
        let needed = required.bytes_per_sec();
        u32::try_from(needed.div_ceil(per_slot)).expect("slot count overflows u32")
    }

    /// One clock cycle in nanoseconds (fractional).
    #[must_use]
    pub fn cycle_ns(&self) -> f64 {
        1_000.0 / self.frequency_mhz as f64
    }

    /// Returns a copy with a different operating frequency — used by the
    /// frequency sweeps of the evaluation.
    #[must_use]
    pub fn at_frequency(mut self, frequency_mhz: u64) -> Self {
        self.frequency_mhz = frequency_mhz;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint: zero
    /// sizes, non-byte width, or a flit too small to carry a header plus
    /// any payload.
    pub fn validate(&self) -> Result<(), String> {
        if self.data_width_bits == 0 || !self.data_width_bits.is_multiple_of(8) {
            return Err(format!(
                "data width {} must be a non-zero multiple of 8 bits",
                self.data_width_bits
            ));
        }
        if self.frequency_mhz == 0 {
            return Err("frequency must be non-zero".into());
        }
        if self.flit_words < 2 {
            return Err(format!(
                "flit of {} words cannot carry a header and payload",
                self.flit_words
            ));
        }
        if self.slot_table_size == 0 {
            return Err("slot table must have at least one slot".into());
        }
        if self.ni_buffer_words < self.flit_words {
            return Err(format!(
                "NI buffer of {} words cannot hold one {}-word flit",
                self.ni_buffer_words, self.flit_words
            ));
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper_default()
    }
}

impl fmt::Display for NocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit @ {} MHz, {}-word flits, {} slots",
            self.data_width_bits, self.frequency_mhz, self.flit_words, self.slot_table_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert_eq!(NocConfig::paper_default().validate(), Ok(()));
    }

    #[test]
    fn slot_bandwidth_matches_hand_calculation() {
        let cfg = NocConfig::paper_default();
        // 2 payload words * 4 bytes = 8 bytes per revolution of 192 cycles.
        // 500e6 / 192 = 2,604,166 revs/s * 8 B = 20,833,328 B/s.
        assert_eq!(cfg.slot_payload_bandwidth().bytes_per_sec(), 20_833_328);
    }

    #[test]
    fn link_payload_bandwidth_is_slots_times_slot() {
        let cfg = NocConfig::paper_default();
        assert_eq!(
            cfg.link_payload_bandwidth().bytes_per_sec(),
            cfg.slot_payload_bandwidth().bytes_per_sec() * 64
        );
    }

    #[test]
    fn slots_for_rounds_up() {
        let cfg = NocConfig::paper_default();
        let per_slot = cfg.slot_payload_bandwidth();
        assert_eq!(cfg.slots_for(per_slot), 1);
        assert_eq!(
            cfg.slots_for(Bandwidth::from_bytes_per_sec(per_slot.bytes_per_sec() + 1)),
            2
        );
        // 500 MB/s / 20,833,328 B/s-per-slot = 24.0000015 -> 25 slots.
        assert_eq!(cfg.slots_for(Bandwidth::from_mbytes_per_sec(500)), 25);
    }

    #[test]
    fn cycle_ns_at_500mhz() {
        assert!((NocConfig::paper_default().cycle_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn at_frequency_changes_only_frequency() {
        let base = NocConfig::paper_default();
        let fast = base.at_frequency(900);
        assert_eq!(fast.frequency_mhz, 900);
        assert_eq!(fast.data_width_bits, base.data_width_bits);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = NocConfig::paper_default();
        c.data_width_bits = 12;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_default();
        c.flit_words = 1;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_default();
        c.slot_table_size = 0;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_default();
        c.ni_buffer_words = 2;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_default();
        c.frequency_mhz = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_summarises_geometry() {
        let s = NocConfig::paper_default().to_string();
        assert!(s.contains("32-bit"), "{s}");
        assert!(s.contains("500 MHz"), "{s}");
    }
}
