//! Seeded connection-churn workloads: streaming open/close/use-case-switch
//! traces for the online reconfiguration engine.
//!
//! The aelite service model is built on *runtime* connection setup and
//! teardown over contention-free TDM slot tables: applications come and
//! go, and a use-case switch tears one application down and brings
//! another up while every persisting connection keeps its slots
//! untouched. This module generates the workloads that exercise that
//! regime at scale:
//!
//! * connection arrivals/departures form a **Poisson process** — event
//!   inter-arrival times are exponentially distributed around
//!   [`ChurnParams::rate_per_sec`] — the classic open model for
//!   independent session traffic;
//! * the open/close mix steers the number of live connections towards
//!   [`ChurnParams::target_open`] of the drawn pool, so a long trace
//!   holds the platform at a realistic steady-state occupancy instead of
//!   draining or saturating it;
//! * with probability [`ChurnParams::switch_weight`] an event is a
//!   **use-case switch** ([`ChurnOp::Switch`]): every open connection of
//!   one application closes and every closed connection of another opens,
//!   applied as one delta — the paper's undisturbed-reconfiguration
//!   scenario.
//!
//! Traces are deterministic per seed and *stateful-consistent*: an op
//! never opens a connection the trace already holds open, and never
//! closes one it holds closed, so an engine replaying the trace from an
//! empty allocation sees a well-formed request stream (admission
//! *rejections* are the engine's business, and are safe: a rejected open
//! leaves the connection closed on both sides).

use crate::app::SystemSpec;
use crate::ids::{AppId, ConnId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One churn request against a live allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// Set up one connection (it currently holds no grant).
    Open(ConnId),
    /// Tear down one connection (it currently holds a grant).
    Close(ConnId),
    /// A use-case switch: tear down `close` and set up `open` as one
    /// delta. Connections in neither set are untouched — the paper's
    /// undisturbed-service model.
    Switch {
        /// Connections leaving the use case (all currently open).
        close: Vec<ConnId>,
        /// Connections entering the use case (all currently closed).
        open: Vec<ConnId>,
    },
}

impl ChurnOp {
    /// Individual connection setups this op requests.
    #[must_use]
    pub fn setups(&self) -> u64 {
        match self {
            ChurnOp::Open(_) => 1,
            ChurnOp::Close(_) => 0,
            ChurnOp::Switch { open, .. } => open.len() as u64,
        }
    }

    /// Individual connection teardowns this op requests.
    #[must_use]
    pub fn teardowns(&self) -> u64 {
        match self {
            ChurnOp::Open(_) => 0,
            ChurnOp::Close(_) => 1,
            ChurnOp::Switch { close, .. } => close.len() as u64,
        }
    }
}

/// A timestamped churn request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Arrival time of the request, in nanoseconds from trace start
    /// (Poisson arrivals: exponential inter-arrival times).
    pub at_ns: u64,
    /// The request.
    pub op: ChurnOp,
}

/// Parameters of a churn trace draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnParams {
    /// Number of events to draw (a switch is one event).
    pub events: u32,
    /// Mean request arrival rate of the Poisson process, per second.
    pub rate_per_sec: f64,
    /// Steady-state fraction of the connection pool to hold open, in
    /// `(0, 1]`; the open/close mix steers towards it.
    pub target_open: f64,
    /// Probability that an event is a use-case switch instead of a
    /// single open/close, in `[0, 1)`.
    pub switch_weight: f64,
}

impl ChurnParams {
    /// A steady-state churn profile: hold ~70% of the pool open, one
    /// use-case switch per ~250 events, arrivals at 1M requests/s (the
    /// throughput regime the online engine is benchmarked at).
    #[must_use]
    pub fn steady(events: u32) -> Self {
        ChurnParams {
            events,
            rate_per_sec: 1.0e6,
            target_open: 0.7,
            switch_weight: 0.004,
        }
    }
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams::steady(10_000)
    }
}

/// A drawn churn workload: a stateful-consistent event stream starting
/// from *all connections closed*.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    /// The events, in non-decreasing time order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnTrace {
    /// Number of events (a switch counts once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total connection setups requested across all events.
    #[must_use]
    pub fn setups(&self) -> u64 {
        self.events.iter().map(|e| e.op.setups()).sum()
    }

    /// Total connection teardowns requested across all events.
    #[must_use]
    pub fn teardowns(&self) -> u64 {
        self.events.iter().map(|e| e.op.teardowns()).sum()
    }

    /// Total individual setup + teardown operations — the denominator of
    /// the engine's ops/sec throughput metric.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.setups() + self.teardowns()
    }

    /// Number of use-case-switch events.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, ChurnOp::Switch { .. }))
            .count() as u64
    }
}

/// One simulated client's private request stream: a churn trace drawn
/// over the client's own disjoint slice of the platform's connection
/// pool (see [`client_population`]).
#[derive(Debug, Clone)]
pub struct ClientTrace {
    /// The client's index in the population, in `0..clients`.
    pub client: u32,
    /// The restricted view of the system this client's trace was drawn
    /// over — its connection ids are the client's pool, unchanged from
    /// the parent spec.
    pub view: SystemSpec,
    /// The client's request stream (stateful-consistent within the
    /// client's pool, starting from all-closed).
    pub trace: ChurnTrace,
}

/// Draws a population of `clients` independent request streams over
/// disjoint connection pools of `spec` — the workload of a serving
/// layer, where many clients concurrently churn their own connections.
///
/// The pool is split round-robin (client `k` owns the connections at
/// positions `k, k + clients, …` of `spec.connections()`), each client's
/// trace is drawn by [`churn_trace`] over the
/// [restricted view](SystemSpec::restricted_to_connections) of its pool
/// with a per-client seed derived from `seed`, and `params` applies per
/// client (`params.events` events *each*). Because restriction preserves
/// connection ids and the pools are disjoint, any interleaving of the
/// streams that preserves each client's own order is stateful-consistent
/// over the whole platform — which is what lets a serving layer batch
/// concurrent requests from distinct clients without cross-request
/// conflicts.
///
/// Deterministic for a given `(spec, clients, params, seed)`.
///
/// # Panics
///
/// Panics if `clients` is zero or exceeds the number of connections
/// (every client needs a non-empty pool), or on any [`churn_trace`]
/// parameter violation.
#[must_use]
pub fn client_population(
    spec: &SystemSpec,
    clients: u32,
    params: &ChurnParams,
    seed: u64,
) -> Vec<ClientTrace> {
    let conns = spec.connections();
    assert!(clients > 0, "need at least one client");
    assert!(
        (clients as usize) <= conns.len(),
        "{clients} clients cannot share {} connections one-per-client",
        conns.len()
    );
    (0..clients)
        .map(|k| {
            let pool: Vec<ConnId> = conns
                .iter()
                .skip(k as usize)
                .step_by(clients as usize)
                .map(|c| c.id)
                .collect();
            let view = spec.restricted_to_connections(&pool);
            let client_seed = seed ^ (u64::from(k)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let trace = churn_trace(&view, params, client_seed);
            ClientTrace {
                client: k,
                view,
                trace,
            }
        })
        .collect()
}

/// [`client_population`] with **grouped pools**: connections are first
/// bucketed by `group_of` (e.g. the shard region of a partitioned mesh,
/// so each client's pool — and therefore its whole request stream —
/// maps to one shard), clients are distributed over the groups
/// proportionally to group size (every group gets at least one client),
/// and within each group the pool splits round-robin exactly as
/// [`client_population`] does.
///
/// Client indices are assigned in ascending group-key order, so the
/// returned population is deterministic for a given
/// `(spec, clients, params, seed, group_of)` — and per-client seeds use
/// the same global-index derivation as [`client_population`], making a
/// one-group population identical to the ungrouped one.
///
/// # Panics
///
/// Panics if `clients` is zero, exceeds the number of connections, or
/// is smaller than the number of distinct groups (every group needs at
/// least one client).
#[must_use]
pub fn client_population_grouped(
    spec: &SystemSpec,
    clients: u32,
    params: &ChurnParams,
    seed: u64,
    group_of: impl Fn(&crate::app::Connection) -> u32,
) -> Vec<ClientTrace> {
    let conns = spec.connections();
    assert!(clients > 0, "need at least one client");
    assert!(
        (clients as usize) <= conns.len(),
        "{clients} clients cannot share {} connections one-per-client",
        conns.len()
    );
    let mut groups: std::collections::BTreeMap<u32, Vec<ConnId>> =
        std::collections::BTreeMap::new();
    for c in conns {
        groups.entry(group_of(c)).or_default().push(c.id);
    }
    let sizes: Vec<usize> = groups.values().map(Vec::len).collect();
    let total: usize = sizes.iter().sum();
    assert!(
        groups.len() <= clients as usize,
        "{clients} clients cannot cover {} groups one-per-group",
        groups.len()
    );

    // Proportional shares, clamped to [1, group size], then balanced
    // round-robin to sum exactly to `clients` — fully deterministic.
    let mut share: Vec<usize> = sizes
        .iter()
        .map(|&s| (clients as usize * s / total).clamp(1, s))
        .collect();
    let mut sum: usize = share.iter().sum();
    let mut i = 0;
    while sum < clients as usize {
        if share[i] < sizes[i] {
            share[i] += 1;
            sum += 1;
        }
        i = (i + 1) % share.len();
    }
    let mut i = 0;
    while sum > clients as usize {
        if share[i] > 1 {
            share[i] -= 1;
            sum -= 1;
        }
        i = (i + 1) % share.len();
    }

    let mut population = Vec::with_capacity(clients as usize);
    let mut k = 0u32;
    for (pool, &members) in groups.values().zip(&share) {
        for j in 0..members {
            let client_pool: Vec<ConnId> = pool.iter().skip(j).step_by(members).copied().collect();
            let view = spec.restricted_to_connections(&client_pool);
            let client_seed = seed ^ (u64::from(k)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let trace = churn_trace(&view, params, client_seed);
            population.push(ClientTrace {
                client: k,
                view,
                trace,
            });
            k += 1;
        }
    }
    population
}

/// Tracks which connections the trace currently holds open, with O(1)
/// uniform sampling from either side (swap-remove lists plus a location
/// index).
struct OpenSet {
    /// Positions (into `spec.connections()`) currently open.
    open: Vec<usize>,
    /// Positions currently closed.
    closed: Vec<usize>,
    /// For each position: (is_open, index within its current list).
    loc: Vec<(bool, usize)>,
}

impl OpenSet {
    fn all_closed(n: usize) -> Self {
        OpenSet {
            open: Vec::new(),
            closed: (0..n).collect(),
            loc: (0..n).map(|i| (false, i)).collect(),
        }
    }

    fn move_to(&mut self, pos: usize, to_open: bool) {
        let (was_open, idx) = self.loc[pos];
        debug_assert_ne!(was_open, to_open, "op violates stateful consistency");
        let from = if was_open {
            &mut self.open
        } else {
            &mut self.closed
        };
        from.swap_remove(idx);
        if let Some(&moved) = from.get(idx) {
            self.loc[moved].1 = idx;
        }
        let to = if to_open {
            &mut self.open
        } else {
            &mut self.closed
        };
        self.loc[pos] = (to_open, to.len());
        to.push(pos);
    }
}

/// Draws a churn trace over the connections of `spec`. Deterministic for
/// a given `(params, seed)` pair; see the [module docs](self) for the
/// model.
///
/// # Panics
///
/// Panics if `params.events` is zero, `target_open` is outside `(0, 1]`,
/// `switch_weight` is outside `[0, 1)`, or `rate_per_sec` is not
/// strictly positive.
#[must_use]
pub fn churn_trace(spec: &SystemSpec, params: &ChurnParams, seed: u64) -> ChurnTrace {
    assert!(params.events > 0, "need at least one event");
    assert!(
        params.target_open > 0.0 && params.target_open <= 1.0,
        "target_open must be in (0, 1]"
    );
    assert!(
        (0.0..1.0).contains(&params.switch_weight),
        "switch_weight must be in [0, 1)"
    );
    assert!(params.rate_per_sec > 0.0, "rate must be positive");

    let conns = spec.connections();
    assert!(!conns.is_empty(), "spec has no connections to churn");
    let n = conns.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = OpenSet::all_closed(n);
    let mut events = Vec::with_capacity(params.events as usize);
    let mean_gap_ns = 1.0e9 / params.rate_per_sec;
    let mut t_ns = 0.0f64;

    for _ in 0..params.events {
        // Poisson arrivals: exponential inter-arrival times.
        let u: f64 = rng.gen();
        t_ns += -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean_gap_ns;

        let op = if rng.gen::<f64>() < params.switch_weight {
            draw_switch(spec, &mut state, &mut rng)
        } else {
            None
        }
        .unwrap_or_else(|| draw_single(spec, &mut state, &mut rng, params.target_open));

        events.push(ChurnEvent {
            at_ns: t_ns as u64,
            op,
        });
    }
    ChurnTrace { events }
}

/// A use-case switch: all open connections of one application out, all
/// closed connections of another in. `None` when no such pair of
/// applications exists yet (e.g. at trace start) — the caller falls back
/// to a single op.
fn draw_switch(spec: &SystemSpec, state: &mut OpenSet, rng: &mut StdRng) -> Option<ChurnOp> {
    let conns = spec.connections();
    let apps: Vec<AppId> = spec.apps().iter().map(|a| a.id).collect();
    // Applications with at least one open / one closed connection.
    let mut has_open = vec![false; apps.len()];
    let mut has_closed = vec![false; apps.len()];
    for (pos, c) in conns.iter().enumerate() {
        let ai = apps.iter().position(|&a| a == c.app).expect("own app");
        if state.loc[pos].0 {
            has_open[ai] = true;
        } else {
            has_closed[ai] = true;
        }
    }
    let victims: Vec<usize> = (0..apps.len()).filter(|&i| has_open[i]).collect();
    if victims.is_empty() {
        return None;
    }
    let victim = victims[rng.gen_range(0..victims.len())];
    let incomings: Vec<usize> = (0..apps.len())
        .filter(|&i| i != victim && has_closed[i])
        .collect();
    if incomings.is_empty() {
        return None;
    }
    let incoming = incomings[rng.gen_range(0..incomings.len())];

    // Spec order keeps the delta deterministic and ids ascending.
    let mut close = Vec::new();
    let mut open = Vec::new();
    for (pos, c) in conns.iter().enumerate() {
        if c.app == apps[victim] && state.loc[pos].0 {
            close.push(c.id);
            state.move_to(pos, false);
        } else if c.app == apps[incoming] && !state.loc[pos].0 {
            open.push(c.id);
            state.move_to(pos, true);
        }
    }
    debug_assert!(!close.is_empty() && !open.is_empty());
    Some(ChurnOp::Switch { close, open })
}

/// A single open or close, biased towards the target occupancy.
fn draw_single(
    spec: &SystemSpec,
    state: &mut OpenSet,
    rng: &mut StdRng,
    target_open: f64,
) -> ChurnOp {
    let n = spec.connections().len();
    let open_frac = state.open.len() as f64 / n as f64;
    // Linear steering: at the target the mix is 50/50; a half-pool
    // deficit pushes the open probability to ~1 (and vice versa).
    let p_open = (0.5 + (target_open - open_frac)).clamp(0.05, 0.95);
    let do_open = if state.open.is_empty() {
        true
    } else if state.closed.is_empty() {
        false
    } else {
        rng.gen::<f64>() < p_open
    };
    if do_open {
        let pos = state.closed[rng.gen_range(0..state.closed.len())];
        state.move_to(pos, true);
        ChurnOp::Open(spec.connections()[pos].id)
    } else {
        let pos = state.open[rng.gen_range(0..state.open.len())];
        state.move_to(pos, false);
        ChurnOp::Close(spec.connections()[pos].id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::paper_workload;
    use std::collections::HashSet;

    fn trace_for(seed: u64, events: u32, switch_weight: f64) -> (ChurnTrace, SystemSpec) {
        let spec = paper_workload(42);
        let params = ChurnParams {
            events,
            switch_weight,
            ..ChurnParams::steady(events)
        };
        (churn_trace(&spec, &params, seed), spec)
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let (a, _) = trace_for(3, 500, 0.01);
        let (b, _) = trace_for(3, 500, 0.01);
        assert_eq!(a, b);
        let (c, _) = trace_for(4, 500, 0.01);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_is_stateful_consistent() {
        // Replaying the trace against a shadow open-set never opens an
        // open connection or closes a closed one.
        let (trace, _) = trace_for(11, 2_000, 0.01);
        let mut open: HashSet<ConnId> = HashSet::new();
        for e in &trace.events {
            match &e.op {
                ChurnOp::Open(c) => assert!(open.insert(*c), "{c} opened twice"),
                ChurnOp::Close(c) => assert!(open.remove(c), "{c} closed while closed"),
                ChurnOp::Switch { close, open: add } => {
                    for c in close {
                        assert!(open.remove(c), "{c} closed while closed");
                    }
                    for c in add {
                        assert!(open.insert(*c), "{c} opened twice");
                    }
                }
            }
        }
        assert!(!open.is_empty(), "steady trace holds connections open");
    }

    #[test]
    fn timestamps_are_nondecreasing_poisson_arrivals() {
        let (trace, _) = trace_for(5, 1_000, 0.0);
        let mut prev = 0;
        for e in &trace.events {
            assert!(e.at_ns >= prev);
            prev = e.at_ns;
        }
        // Mean inter-arrival ≈ 1 µs at 1M req/s: the 1000-event horizon
        // lands within a factor of two of 1 ms.
        assert!(prev > 500_000 && prev < 2_000_000, "end at {prev} ns");
    }

    #[test]
    fn occupancy_settles_near_target() {
        let (trace, spec) = trace_for(9, 4_000, 0.0);
        let mut open = 0i64;
        for e in &trace.events {
            open += e.op.setups() as i64 - e.op.teardowns() as i64;
        }
        let frac = open as f64 / spec.connections().len() as f64;
        assert!((0.5..=0.9).contains(&frac), "settled at {frac}");
    }

    #[test]
    fn switches_appear_and_move_whole_apps() {
        let (trace, spec) = trace_for(7, 4_000, 0.02);
        assert!(trace.switches() > 0, "no switch drawn in 4000 events");
        assert_eq!(
            trace.ops(),
            trace.setups() + trace.teardowns(),
            "ops is the setup+teardown total"
        );
        for e in &trace.events {
            if let ChurnOp::Switch { close, open } = &e.op {
                assert!(!close.is_empty() && !open.is_empty());
                // One application per side of the delta.
                let capp = spec.connection(close[0]).app;
                assert!(close.iter().all(|&c| spec.connection(c).app == capp));
                let oapp = spec.connection(open[0]).app;
                assert!(open.iter().all(|&c| spec.connection(c).app == oapp));
                assert_ne!(capp, oapp);
            }
        }
    }

    #[test]
    fn client_population_partitions_the_pool_disjointly() {
        let spec = paper_workload(42);
        let params = ChurnParams::steady(200);
        let population = client_population(&spec, 7, &params, 3);
        assert_eq!(population.len(), 7);
        // The pools are disjoint and cover every connection.
        let mut seen: HashSet<ConnId> = HashSet::new();
        for ct in &population {
            for c in ct.view.connections() {
                assert!(seen.insert(c.id), "{} owned by two clients", c.id);
            }
        }
        assert_eq!(seen.len(), spec.connections().len());
        // Each client's trace stays within its own pool.
        for ct in &population {
            let pool: HashSet<ConnId> = ct.view.connections().iter().map(|c| c.id).collect();
            for e in &ct.trace.events {
                let ids: Vec<ConnId> = match &e.op {
                    ChurnOp::Open(c) | ChurnOp::Close(c) => vec![*c],
                    ChurnOp::Switch { close, open } => close.iter().chain(open).copied().collect(),
                };
                assert!(ids.iter().all(|c| pool.contains(c)));
            }
        }
    }

    #[test]
    fn client_population_merges_stateful_consistent() {
        // Any client-order-preserving interleaving is globally
        // stateful-consistent; check the sort-by-time merge.
        let spec = paper_workload(42);
        let population = client_population(&spec, 5, &ChurnParams::steady(400), 11);
        let mut merged: Vec<(u64, u32, usize)> = Vec::new();
        for ct in &population {
            for (seq, e) in ct.trace.events.iter().enumerate() {
                merged.push((e.at_ns, ct.client, seq));
            }
        }
        merged.sort_unstable();
        let mut open: HashSet<ConnId> = HashSet::new();
        for (_, client, seq) in merged {
            match &population[client as usize].trace.events[seq].op {
                ChurnOp::Open(c) => assert!(open.insert(*c), "{c} opened twice"),
                ChurnOp::Close(c) => assert!(open.remove(c), "{c} closed while closed"),
                ChurnOp::Switch { close, open: add } => {
                    for c in close {
                        assert!(open.remove(c));
                    }
                    for c in add {
                        assert!(open.insert(*c));
                    }
                }
            }
        }
    }

    #[test]
    fn client_population_is_deterministic_and_seed_sensitive() {
        let spec = paper_workload(42);
        let params = ChurnParams::steady(100);
        let a = client_population(&spec, 4, &params, 5);
        let b = client_population(&spec, 4, &params, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace);
        }
        let c = client_population(&spec, 4, &params, 6);
        assert!(a.iter().zip(&c).any(|(x, y)| x.trace != y.trace));
    }

    #[test]
    #[should_panic(expected = "one-per-client")]
    fn too_many_clients_rejected() {
        let spec = paper_workload(1);
        let n = spec.connections().len() as u32;
        let _ = client_population(&spec, n + 1, &ChurnParams::steady(10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_events_rejected() {
        let spec = paper_workload(1);
        let params = ChurnParams {
            events: 0,
            ..ChurnParams::default()
        };
        let _ = churn_trace(&spec, &params, 0);
    }
}
