//! # aelite-spec — platform and use-case specifications for the aelite NoC
//!
//! Everything the allocation flow and the simulators consume:
//!
//! * [`ids`] — typed identifiers for routers, NIs, IPs, links, connections
//!   and applications.
//! * [`topology`] — (concentrated) meshes and arbitrary topologies of
//!   routers, NIs and directed links.
//! * [`traffic`] — bandwidth units and offered-load patterns.
//! * [`config`] — the NoC-wide geometry: data width, frequency, 3-word
//!   flits, TDM slot-table size.
//! * [`app`] — applications, guaranteed-service connections and the
//!   complete [`app::SystemSpec`].
//! * [`generate`] — seeded random workloads, including the paper's
//!   200-connection Section VII experiment.
//! * [`churn`] — Poisson-arrival connection open/close/use-case-switch
//!   traces for the online reconfiguration engine.
//! * [`fault`] — seeded link/router failure-and-repair traces and their
//!   interleaving with churn, for the online recovery engine.
//!
//! # Examples
//!
//! Rebuild the paper's experimental platform:
//!
//! ```
//! use aelite_spec::generate::paper_workload;
//!
//! let spec = paper_workload(42);
//! assert_eq!(spec.topology().router_count(), 12); // 4x3 mesh
//! assert_eq!(spec.topology().ni_count(), 48);     // 4 NIs per router
//! assert_eq!(spec.ip_count(), 70);
//! assert_eq!(spec.connections().len(), 200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod churn;
pub mod config;
pub mod fault;
pub mod generate;
pub mod ids;
pub mod topology;
pub mod traffic;

pub use app::{Application, Connection, SystemSpec, SystemSpecBuilder};
pub use churn::{churn_trace, ChurnEvent, ChurnOp, ChurnParams, ChurnTrace};
pub use config::NocConfig;
pub use fault::{
    fault_trace, FaultEvent, FaultOp, FaultParams, FaultScenario, FaultTrace, ScenarioEvent,
    ScenarioOp,
};
pub use generate::{
    paper_workload, random_workload, try_random_workload, TrafficProfile, WorkloadBuilder,
    WorkloadError, WorkloadParams,
};
pub use ids::{AppId, ConnId, IpId, LinkId, NiId, Port, RouterId};
pub use topology::{Endpoint, Link, PortTarget, Topology, TopologyBuilder};
pub use traffic::{Bandwidth, TrafficPattern};
