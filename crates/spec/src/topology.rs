//! NoC topology: routers, network interfaces and directed physical links.
//!
//! The paper's experimental platform is a **concentrated mesh** (4×3 routers
//! with 4 NIs per router, Section VII); [`Topology::mesh`] builds exactly
//! that family. Arbitrary irregular topologies can be assembled with
//! [`TopologyBuilder`], which is also how the mesh constructor is
//! implemented.
//!
//! Every link is *directed*; a bidirectional physical channel is two links.
//! Routers address their neighbours through dense port indices `0..arity`,
//! which is what the source-route header encodes (one output port per hop).
//!
//! # Examples
//!
//! ```
//! use aelite_spec::topology::Topology;
//!
//! // The paper's platform: 4x3 mesh, 4 NIs per router.
//! let topo = Topology::mesh(4, 3, 4);
//! assert_eq!(topo.router_count(), 12);
//! assert_eq!(topo.ni_count(), 48);
//! // A corner router has 2 neighbours + 4 NIs = arity 6.
//! let corner = topo.router_at(0, 0).unwrap();
//! assert_eq!(topo.arity(corner), 6);
//! ```

use crate::ids::{LinkId, NiId, Port, RouterId};
use core::fmt;

/// One end of a directed link: a specific port on a router or an NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A router port.
    Router(RouterId, Port),
    /// An NI's network-side port (NIs have exactly one).
    Ni(NiId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Router(r, p) => write!(f, "{r}.{p}"),
            Endpoint::Ni(n) => write!(f, "{n}"),
        }
    }
}

/// What a router port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortTarget {
    /// The port faces another router.
    Router(RouterId),
    /// The port faces a network interface.
    Ni(NiId),
}

/// A directed physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Driving end.
    pub from: Endpoint,
    /// Receiving end.
    pub to: Endpoint,
}

#[derive(Debug, Clone, Default)]
struct RouterNode {
    /// Outgoing target per port, indexed by port number.
    ports: Vec<PortTarget>,
    /// Outgoing link per port.
    out_links: Vec<LinkId>,
    /// Incoming link per port (same port numbering as outgoing: port *p*
    /// faces one neighbour in both directions, as in the paper's routers).
    in_links: Vec<LinkId>,
    /// Mesh coordinates if built by [`Topology::mesh`].
    coords: Option<(u32, u32)>,
}

#[derive(Debug, Clone)]
struct NiNode {
    router: RouterId,
    router_port: Port,
    to_router: LinkId,
    from_router: LinkId,
}

/// An immutable NoC topology.
///
/// Construct with [`Topology::mesh`] or [`TopologyBuilder`].
#[derive(Debug, Clone)]
pub struct Topology {
    routers: Vec<RouterNode>,
    nis: Vec<NiNode>,
    links: Vec<Link>,
    cols: Option<u32>,
    rows: Option<u32>,
}

impl Topology {
    /// Builds a `cols`×`rows` mesh with `nis_per_router` NIs on every
    /// router (a *concentrated* mesh when `nis_per_router > 1`).
    ///
    /// Port numbering per router: NI ports first (`0..nis_per_router`),
    /// then the existing compass neighbours in north, east, south, west
    /// order. Port numbers are dense, so edge routers have lower arity —
    /// matching the paper's arity-parametrisable router.
    ///
    /// # Panics
    ///
    /// Panics if `cols`, `rows` or `nis_per_router` is zero.
    #[must_use]
    pub fn mesh(cols: u32, rows: u32, nis_per_router: u32) -> Topology {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be non-zero");
        assert!(nis_per_router > 0, "need at least one NI per router");
        let mut b = TopologyBuilder::new();
        let mut grid = Vec::with_capacity((cols * rows) as usize);
        for y in 0..rows {
            for x in 0..cols {
                grid.push(b.add_router_at(x, y));
            }
        }
        let idx = |x: u32, y: u32| grid[(y * cols + x) as usize];
        for y in 0..rows {
            for x in 0..cols {
                let r = idx(x, y);
                for _ in 0..nis_per_router {
                    b.add_ni(r);
                }
            }
        }
        // North, east, south, west — in that order per router.
        for y in 0..rows {
            for x in 0..cols {
                let r = idx(x, y);
                if y > 0 {
                    b.connect_routers(r, idx(x, y - 1));
                }
                if x + 1 < cols {
                    b.connect_routers(r, idx(x + 1, y));
                }
                if y + 1 < rows {
                    b.connect_routers(r, idx(x, y + 1));
                }
                if x > 0 {
                    b.connect_routers(r, idx(x - 1, y));
                }
            }
        }
        let mut topo = b.build();
        topo.cols = Some(cols);
        topo.rows = Some(rows);
        topo
    }

    /// Builds a bidirectional ring of `routers` routers with
    /// `nis_per_router` NIs each.
    ///
    /// Rings have no mesh coordinates, so allocation falls back to
    /// breadth-first route search — useful for exercising aelite on
    /// non-mesh interconnect shapes.
    ///
    /// # Panics
    ///
    /// Panics if `routers < 3` (smaller rings degenerate into the
    /// two-router chain [`TopologyBuilder`] can build directly) or
    /// `nis_per_router` is zero.
    #[must_use]
    pub fn ring(routers: u32, nis_per_router: u32) -> Topology {
        assert!(routers >= 3, "a ring needs at least three routers");
        assert!(nis_per_router > 0, "need at least one NI per router");
        let mut b = TopologyBuilder::new();
        let ids: Vec<RouterId> = (0..routers).map(|_| b.add_router()).collect();
        for &r in &ids {
            for _ in 0..nis_per_router {
                b.add_ni(r);
            }
        }
        for i in 0..routers as usize {
            let next = (i + 1) % routers as usize;
            b.connect_routers(ids[i], ids[next]);
            b.connect_routers(ids[next], ids[i]);
        }
        b.build()
    }

    /// Number of routers.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of network interfaces.
    #[must_use]
    pub fn ni_count(&self) -> usize {
        self.nis.len()
    }

    /// Number of directed links (router↔router and router↔NI).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all router ids.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len() as u32).map(RouterId::new)
    }

    /// Iterator over all NI ids.
    pub fn nis(&self) -> impl Iterator<Item = NiId> + '_ {
        (0..self.nis.len() as u32).map(NiId::new)
    }

    /// Iterator over all link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId::new)
    }

    /// The directed link behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this topology.
    #[must_use]
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// The number of ports (arity) of `router`.
    #[must_use]
    pub fn arity(&self, router: RouterId) -> usize {
        self.routers[router.index()].ports.len()
    }

    /// The largest router arity in the topology.
    #[must_use]
    pub fn max_arity(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.ports.len())
            .max()
            .unwrap_or(0)
    }

    /// What `port` of `router` connects to, or `None` for an out-of-range
    /// port.
    #[must_use]
    pub fn port_target(&self, router: RouterId, port: Port) -> Option<PortTarget> {
        self.routers[router.index()]
            .ports
            .get(port.index())
            .copied()
    }

    /// All ports of `router` with their targets.
    pub fn ports(&self, router: RouterId) -> impl Iterator<Item = (Port, PortTarget)> + '_ {
        self.routers[router.index()]
            .ports
            .iter()
            .enumerate()
            .map(|(i, &t)| (Port(i as u8), t))
    }

    /// The outgoing link leaving `router` through `port`.
    #[must_use]
    pub fn out_link(&self, router: RouterId, port: Port) -> Option<LinkId> {
        self.routers[router.index()]
            .out_links
            .get(port.index())
            .copied()
    }

    /// The incoming link arriving at `router` on `port`.
    #[must_use]
    pub fn in_link(&self, router: RouterId, port: Port) -> Option<LinkId> {
        self.routers[router.index()]
            .in_links
            .get(port.index())
            .copied()
    }

    /// The port of `router` that faces `target`, if any.
    #[must_use]
    pub fn port_towards(&self, router: RouterId, target: PortTarget) -> Option<Port> {
        self.routers[router.index()]
            .ports
            .iter()
            .position(|&t| t == target)
            .map(|i| Port(i as u8))
    }

    /// The router an NI is attached to.
    #[must_use]
    pub fn ni_router(&self, ni: NiId) -> RouterId {
        self.nis[ni.index()].router
    }

    /// The router port an NI is attached to.
    #[must_use]
    pub fn ni_router_port(&self, ni: NiId) -> Port {
        self.nis[ni.index()].router_port
    }

    /// The link from `ni` into its router.
    #[must_use]
    pub fn ni_ingress_link(&self, ni: NiId) -> LinkId {
        self.nis[ni.index()].to_router
    }

    /// The link from the router out to `ni`.
    #[must_use]
    pub fn ni_egress_link(&self, ni: NiId) -> LinkId {
        self.nis[ni.index()].from_router
    }

    /// All NIs attached to `router`.
    pub fn router_nis(&self, router: RouterId) -> impl Iterator<Item = NiId> + '_ {
        self.nis
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.router == router)
            .map(|(i, _)| NiId::new(i as u32))
    }

    /// Mesh coordinates of `router` (column, row), if this topology was
    /// built as a mesh.
    #[must_use]
    pub fn coords(&self, router: RouterId) -> Option<(u32, u32)> {
        self.routers[router.index()].coords
    }

    /// The router at mesh position (`x`, `y`), if this is a mesh.
    #[must_use]
    pub fn router_at(&self, x: u32, y: u32) -> Option<RouterId> {
        let (cols, rows) = (self.cols?, self.rows?);
        if x < cols && y < rows {
            Some(RouterId::new(y * cols + x))
        } else {
            None
        }
    }

    /// Mesh dimensions (columns, rows), if this is a mesh.
    #[must_use]
    pub fn mesh_dims(&self) -> Option<(u32, u32)> {
        Some((self.cols?, self.rows?))
    }
}

/// Incremental construction of arbitrary topologies.
///
/// # Examples
///
/// ```
/// use aelite_spec::topology::{PortTarget, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// let r0 = b.add_router();
/// let r1 = b.add_router();
/// let ni = b.add_ni(r0);
/// b.connect_routers(r0, r1);
/// b.connect_routers(r1, r0);
/// let topo = b.build();
/// assert_eq!(topo.arity(r0), 2); // one NI port + one router port
/// assert_eq!(topo.ni_router(ni), r0);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    routers: Vec<RouterNode>,
    nis: Vec<NiNode>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a router with no ports yet.
    pub fn add_router(&mut self) -> RouterId {
        let id = RouterId::new(self.routers.len() as u32);
        self.routers.push(RouterNode::default());
        id
    }

    fn add_router_at(&mut self, x: u32, y: u32) -> RouterId {
        let id = self.add_router();
        self.routers[id.index()].coords = Some((x, y));
        id
    }

    fn new_port(&mut self, router: RouterId, target: PortTarget) -> Port {
        let node = &mut self.routers[router.index()];
        let port = Port(node.ports.len() as u8);
        assert!(node.ports.len() < 255, "router arity limit exceeded");
        node.ports.push(target);
        // Links are filled in by the caller; reserve the slots.
        node.out_links.push(LinkId::new(u32::MAX));
        node.in_links.push(LinkId::new(u32::MAX));
        port
    }

    fn add_link(&mut self, from: Endpoint, to: Endpoint) -> LinkId {
        let id = LinkId::new(self.links.len() as u32);
        self.links.push(Link { from, to });
        id
    }

    /// Adds an NI attached to `router`, creating the two links between
    /// them and a new router port facing the NI.
    pub fn add_ni(&mut self, router: RouterId) -> NiId {
        let ni = NiId::new(self.nis.len() as u32);
        let port = self.new_port(router, PortTarget::Ni(ni));
        let to_router = self.add_link(Endpoint::Ni(ni), Endpoint::Router(router, port));
        let from_router = self.add_link(Endpoint::Router(router, port), Endpoint::Ni(ni));
        self.routers[router.index()].out_links[port.index()] = from_router;
        self.routers[router.index()].in_links[port.index()] = to_router;
        self.nis.push(NiNode {
            router,
            router_port: port,
            to_router,
            from_router,
        });
        ni
    }

    /// Adds the directed link `from → to` between two routers, creating or
    /// reusing the facing ports on both sides.
    ///
    /// Calling this twice with swapped arguments produces the usual
    /// bidirectional channel. Port numbering stays consistent: the same
    /// port of a router faces the same neighbour in both directions.
    pub fn connect_routers(&mut self, from: RouterId, to: RouterId) {
        let from_port = self
            .port_towards(from, PortTarget::Router(to))
            .unwrap_or_else(|| self.new_port(from, PortTarget::Router(to)));
        let to_port = self
            .port_towards(to, PortTarget::Router(from))
            .unwrap_or_else(|| self.new_port(to, PortTarget::Router(from)));
        let link = self.add_link(
            Endpoint::Router(from, from_port),
            Endpoint::Router(to, to_port),
        );
        self.routers[from.index()].out_links[from_port.index()] = link;
        self.routers[to.index()].in_links[to_port.index()] = link;
    }

    fn port_towards(&self, router: RouterId, target: PortTarget) -> Option<Port> {
        self.routers[router.index()]
            .ports
            .iter()
            .position(|&t| t == target)
            .map(|i| Port(i as u8))
    }

    /// Finalises the topology.
    ///
    /// # Panics
    ///
    /// Panics if any router port was created in only one direction (e.g.
    /// `connect_routers(a, b)` without the matching `(b, a)`), because the
    /// aelite link pipeline and wrapper models assume full-duplex ports.
    #[must_use]
    pub fn build(self) -> Topology {
        for (i, r) in self.routers.iter().enumerate() {
            for (p, (&o, &inl)) in r.out_links.iter().zip(&r.in_links).enumerate() {
                assert!(
                    o != LinkId::new(u32::MAX) && inl != LinkId::new(u32::MAX),
                    "router R{i} port p{p} is only connected in one direction"
                );
            }
        }
        Topology {
            routers: self.routers,
            nis: self.nis,
            links: self.links,
            cols: None,
            rows: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_has_expected_counts() {
        let t = Topology::mesh(4, 3, 4);
        assert_eq!(t.router_count(), 12);
        assert_eq!(t.ni_count(), 48);
        // Router-router: horizontal 3*3*2=18? No: per row 3 bidir pairs x 3
        // rows = 9 pairs, vertical 4 cols x 2 = 8 pairs; (9+8)*2 = 34
        // directed router links. NI links: 48 * 2 = 96. Total 130.
        assert_eq!(t.link_count(), 34 + 96);
    }

    #[test]
    fn mesh_arity_matches_position() {
        let t = Topology::mesh(4, 3, 4);
        // Corner: 2 neighbours + 4 NIs.
        assert_eq!(t.arity(t.router_at(0, 0).unwrap()), 6);
        // Edge (top middle): 3 neighbours + 4 NIs.
        assert_eq!(t.arity(t.router_at(1, 0).unwrap()), 7);
        // Centre: 4 neighbours + 4 NIs.
        assert_eq!(t.arity(t.router_at(1, 1).unwrap()), 8);
        assert_eq!(t.max_arity(), 8);
    }

    #[test]
    fn coords_roundtrip() {
        let t = Topology::mesh(4, 3, 1);
        for y in 0..3 {
            for x in 0..4 {
                let r = t.router_at(x, y).unwrap();
                assert_eq!(t.coords(r), Some((x, y)));
            }
        }
        assert_eq!(t.router_at(4, 0), None);
        assert_eq!(t.router_at(0, 3), None);
        assert_eq!(t.mesh_dims(), Some((4, 3)));
    }

    #[test]
    fn ports_face_consistent_neighbours() {
        let t = Topology::mesh(3, 3, 1);
        let c = t.router_at(1, 1).unwrap();
        let north = t.router_at(1, 0).unwrap();
        let port = t.port_towards(c, PortTarget::Router(north)).unwrap();
        // The outgoing link through that port must end at the north router,
        // and the incoming link on the same port must start there.
        let out = t.link(t.out_link(c, port).unwrap());
        match out.to {
            Endpoint::Router(r, _) => assert_eq!(r, north),
            other => panic!("unexpected endpoint {other:?}"),
        }
        let inl = t.link(t.in_link(c, port).unwrap());
        match inl.from {
            Endpoint::Router(r, _) => assert_eq!(r, north),
            other => panic!("unexpected endpoint {other:?}"),
        }
    }

    #[test]
    fn ni_links_connect_ni_and_router() {
        let t = Topology::mesh(2, 2, 2);
        for ni in t.nis() {
            let r = t.ni_router(ni);
            let ingress = t.link(t.ni_ingress_link(ni));
            assert_eq!(ingress.from, Endpoint::Ni(ni));
            assert!(matches!(ingress.to, Endpoint::Router(rr, _) if rr == r));
            let egress = t.link(t.ni_egress_link(ni));
            assert!(matches!(egress.from, Endpoint::Router(rr, _) if rr == r));
            assert_eq!(egress.to, Endpoint::Ni(ni));
        }
    }

    #[test]
    fn router_nis_lists_attached_nis() {
        let t = Topology::mesh(2, 1, 3);
        let r0 = t.router_at(0, 0).unwrap();
        let nis: Vec<_> = t.router_nis(r0).collect();
        assert_eq!(nis.len(), 3);
        for ni in nis {
            assert_eq!(t.ni_router(ni), r0);
        }
    }

    #[test]
    fn single_router_mesh_is_legal() {
        let t = Topology::mesh(1, 1, 4);
        assert_eq!(t.router_count(), 1);
        assert_eq!(t.arity(RouterId::new(0)), 4);
        assert_eq!(t.link_count(), 8);
    }

    #[test]
    #[should_panic(expected = "only connected in one direction")]
    fn half_connected_port_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router();
        let c = b.add_router();
        b.connect_routers(a, c); // missing (c, a)
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_mesh_rejected() {
        let _ = Topology::mesh(0, 3, 1);
    }

    #[test]
    fn builder_supports_irregular_topologies() {
        // A three-router chain with NIs only at the ends.
        let mut b = TopologyBuilder::new();
        let left = b.add_router();
        let mid = b.add_router();
        let right = b.add_router();
        let ni_l = b.add_ni(left);
        let ni_r = b.add_ni(right);
        b.connect_routers(left, mid);
        b.connect_routers(mid, left);
        b.connect_routers(mid, right);
        b.connect_routers(right, mid);
        let t = b.build();
        assert_eq!(t.arity(mid), 2);
        assert_eq!(t.arity(left), 2);
        assert_eq!(t.ni_router(ni_l), left);
        assert_eq!(t.ni_router(ni_r), right);
        assert_eq!(t.coords(mid), None);
        assert_eq!(t.router_at(0, 0), None);
    }

    #[test]
    fn ring_topology_counts_and_arity() {
        let t = Topology::ring(5, 2);
        assert_eq!(t.router_count(), 5);
        assert_eq!(t.ni_count(), 10);
        // 2 NI ports + 2 neighbours on every router.
        for r in t.routers() {
            assert_eq!(t.arity(r), 4);
        }
        // 5 bidirectional router pairs + 10 NIs * 2 = 30 directed links.
        assert_eq!(t.link_count(), 10 + 20);
        // Not a mesh: no coordinates.
        assert_eq!(t.coords(RouterId::new(0)), None);
        assert_eq!(t.mesh_dims(), None);
    }

    #[test]
    fn ring_is_fully_connected_both_ways() {
        let t = Topology::ring(4, 1);
        for r in t.routers() {
            let neighbours: Vec<_> = t
                .ports(r)
                .filter_map(|(_, tgt)| match tgt {
                    PortTarget::Router(n) => Some(n),
                    PortTarget::Ni(_) => None,
                })
                .collect();
            assert_eq!(neighbours.len(), 2, "{r} must have two ring neighbours");
        }
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(2, 1);
    }

    #[test]
    fn port_target_out_of_range_is_none() {
        let t = Topology::mesh(1, 1, 1);
        assert_eq!(t.port_target(RouterId::new(0), Port(200)), None);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(
            Endpoint::Router(RouterId::new(1), Port(2)).to_string(),
            "R1.p2"
        );
        assert_eq!(Endpoint::Ni(NiId::new(3)).to_string(), "NI3");
    }
}
