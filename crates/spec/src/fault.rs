//! Seeded fault workloads: link/router failure and repair traces, and
//! their interleaving with connection churn.
//!
//! The paper's composable-service contract is hardest under *faults*: a
//! link goes down at run time, the connections routed over it must be
//! re-admitted elsewhere, and every bystander's contention-free service
//! must continue bit-for-bit. This module generates the fault side of
//! that scenario as data — deterministic, seeded event streams the
//! online recovery engine (`aelite_online::fault`) replays:
//!
//! * **link events** ([`FaultOp::LinkDown`] / [`FaultOp::LinkUp`]) fail
//!   and repair individual directed links; the down/up mix steers the
//!   number of failed links towards [`FaultParams::target_down`] of the
//!   topology, holding a long trace at a steady degradation level;
//! * **router events** ([`FaultOp::RouterDown`] / [`FaultOp::RouterUp`])
//!   fail a whole router: every link adjacent to it (router-router *and*
//!   NI links) goes down with it, and repair raises them together;
//! * **transient glitches** ([`FaultOp::LinkGlitch`]) are self-clearing:
//!   a currently-up link misbehaves for `duration_ns` and then recovers
//!   on its own, with no paired repair event in the trace. Whether a
//!   glitch displaces traffic is the *engine's* call (its persistence
//!   threshold), so glitches never enter the trace's down-set — a
//!   permanent [`FaultOp::LinkDown`] may land on a glitched link, which
//!   the engine treats as escalation;
//! * a [`FaultScenario`] merges a fault trace with a churn trace
//!   ([`crate::churn::churn_trace`]) into one time-ordered stream, so an
//!   engine services failures *as churn deltas* — the ROADMAP's
//!   link-failure-as-reconfiguration scenario.
//!
//! Traces are deterministic per seed and *stateful-consistent* over the
//! evolving down-set: a link never fails while failed or repairs while
//! up, a router never fails while failed, and while a router is down its
//! adjacent links stay down (individual repairs of them are not drawn)
//! until the router itself is repaired.

use crate::churn::{ChurnOp, ChurnTrace};
use crate::ids::{LinkId, RouterId};
use crate::topology::{Endpoint, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault or repair event against the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// One directed link fails (it is currently up).
    LinkDown(LinkId),
    /// One directed link is repaired (it is currently down, and not
    /// held down by a failed router).
    LinkUp(LinkId),
    /// A whole router fails: every adjacent link — router-router and NI
    /// links on either side — that is still up goes down with it.
    RouterDown(RouterId),
    /// A failed router is repaired: every adjacent link currently down
    /// comes back up with it.
    RouterUp(RouterId),
    /// One directed link (currently up) suffers a transient,
    /// self-clearing fault: it is unusable for `duration_ns` from the
    /// event's arrival, then recovers without a repair event.
    LinkGlitch {
        /// The glitched link.
        link: LinkId,
        /// How long the glitch lasts, in nanoseconds.
        duration_ns: u64,
    },
}

/// A timestamped fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Arrival time of the event, in nanoseconds from trace start
    /// (Poisson arrivals: exponential inter-arrival times).
    pub at_ns: u64,
    /// The fault or repair.
    pub op: FaultOp,
}

/// Parameters of a fault trace draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultParams {
    /// Number of events to draw (a router failure is one event).
    pub events: u32,
    /// Mean event arrival rate of the Poisson process, per second.
    pub rate_per_sec: f64,
    /// Steady-state fraction of links to hold down, in `(0, 1)`; the
    /// down/up mix steers towards it.
    pub target_down: f64,
    /// Probability that an event targets a whole router instead of a
    /// single link, in `[0, 1)`.
    pub router_weight: f64,
    /// Probability that an event is a transient [`FaultOp::LinkGlitch`]
    /// instead of a permanent fault/repair, in `[0, 1)`. Glitches are
    /// drawn on currently-up links and do not enter the down-set.
    pub glitch_weight: f64,
    /// Shortest glitch duration drawn, in nanoseconds (inclusive).
    pub glitch_min_ns: u64,
    /// Longest glitch duration drawn, in nanoseconds (inclusive).
    pub glitch_max_ns: u64,
}

impl FaultParams {
    /// A sparse degradation profile: hold ~4% of the links down, one
    /// router event per ~7 link events, arrivals at 20k events/s —
    /// faults orders of magnitude rarer than the 1M req/s churn regime
    /// they interleave with. One event in five is a transient glitch
    /// lasting 2–40 µs, straddling typical persistence thresholds so a
    /// replay exercises both the masked-only and the escalated paths.
    #[must_use]
    pub fn sparse(events: u32) -> Self {
        FaultParams {
            events,
            rate_per_sec: 2.0e4,
            target_down: 0.04,
            router_weight: 0.15,
            glitch_weight: 0.2,
            glitch_min_ns: 2_000,
            glitch_max_ns: 40_000,
        }
    }

    /// `self` with transient glitches disabled: every event is a
    /// permanent fault or repair, exactly the pre-glitch model.
    #[must_use]
    pub fn permanent_only(self) -> Self {
        FaultParams {
            glitch_weight: 0.0,
            ..self
        }
    }
}

impl Default for FaultParams {
    fn default() -> Self {
        FaultParams::sparse(100)
    }
}

/// A drawn fault workload: a stateful-consistent event stream starting
/// from *everything up*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTrace {
    /// The events, in non-decreasing time order.
    pub events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// Number of events (a router failure counts once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of failure events (link or router down).
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, FaultOp::LinkDown(_) | FaultOp::RouterDown(_)))
            .count() as u64
    }

    /// Number of repair events (link or router up).
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, FaultOp::LinkUp(_) | FaultOp::RouterUp(_)))
            .count() as u64
    }

    /// Number of transient glitch events (self-clearing, no paired
    /// repair in the trace).
    #[must_use]
    pub fn glitches(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, FaultOp::LinkGlitch { .. }))
            .count() as u64
    }
}

/// One operation of a merged churn + fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOp {
    /// A connection churn request.
    Churn(ChurnOp),
    /// A fault or repair.
    Fault(FaultOp),
}

/// A timestamped scenario operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// Arrival time, in nanoseconds from scenario start.
    pub at_ns: u64,
    /// The operation.
    pub op: ScenarioOp,
}

/// A churn trace and a fault trace merged into one time-ordered stream:
/// the workload of a recovery engine, where failures arrive *between*
/// ordinary setup/teardown requests and are serviced by the same
/// admission machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// The events, in non-decreasing time order; at equal timestamps the
    /// churn event precedes the fault (the request was in flight first).
    pub events: Vec<ScenarioEvent>,
}

impl FaultScenario {
    /// Merges `churn` and `faults` by timestamp (stable two-pointer
    /// merge; ties resolve churn-first). Each input trace is already
    /// time-ordered, so the result is too, and each side's internal
    /// order — which is what its stateful consistency is defined over —
    /// is preserved.
    #[must_use]
    pub fn merge(churn: &ChurnTrace, faults: &FaultTrace) -> Self {
        let mut events = Vec::with_capacity(churn.len() + faults.len());
        let (mut i, mut j) = (0, 0);
        while i < churn.events.len() || j < faults.events.len() {
            let take_churn = match (churn.events.get(i), faults.events.get(j)) {
                (Some(c), Some(f)) => c.at_ns <= f.at_ns,
                (Some(_), None) => true,
                _ => false,
            };
            if take_churn {
                let e = &churn.events[i];
                events.push(ScenarioEvent {
                    at_ns: e.at_ns,
                    op: ScenarioOp::Churn(e.op.clone()),
                });
                i += 1;
            } else {
                let e = &faults.events[j];
                events.push(ScenarioEvent {
                    at_ns: e.at_ns,
                    op: ScenarioOp::Fault(e.op),
                });
                j += 1;
            }
        }
        FaultScenario { events }
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the scenario holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fault-side events.
    #[must_use]
    pub fn fault_ops(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.op, ScenarioOp::Fault(_)))
            .count() as u64
    }

    /// Number of churn-side events.
    #[must_use]
    pub fn churn_ops(&self) -> u64 {
        self.len() as u64 - self.fault_ops()
    }
}

/// The evolving health state a trace draw is consistent against.
struct DownSet {
    /// Per-link down flag.
    link_down: Vec<bool>,
    /// Per-router down flag (set only by [`FaultOp::RouterDown`]).
    router_down: Vec<bool>,
    /// Number of links currently down.
    down_links: usize,
}

impl DownSet {
    fn all_up(topo: &Topology) -> Self {
        DownSet {
            link_down: vec![false; topo.link_count()],
            router_down: vec![false; topo.router_count()],
            down_links: 0,
        }
    }

    fn set_link(&mut self, l: LinkId, down: bool) {
        if self.link_down[l.index()] != down {
            self.link_down[l.index()] = down;
            if down {
                self.down_links += 1;
            } else {
                self.down_links -= 1;
            }
        }
    }
}

/// Whether `l` has `r` on either end (NI links adjacent to `r` count).
fn adjacent(topo: &Topology, l: LinkId, r: RouterId) -> bool {
    let link = topo.link(l);
    let touches = |e: Endpoint| matches!(e, Endpoint::Router(rr, _) if rr == r);
    touches(link.from) || touches(link.to)
}

/// The router a link is adjacent to that is currently down, if any.
fn held_by_down_router(topo: &Topology, state: &DownSet, l: LinkId) -> bool {
    let link = topo.link(l);
    let down = |e: Endpoint| matches!(e, Endpoint::Router(r, _) if state.router_down[r.index()]);
    down(link.from) || down(link.to)
}

/// Draws a fault trace over the links and routers of `topo`.
/// Deterministic for a given `(params, seed)` pair; see the
/// [module docs](self) for the model.
///
/// # Panics
///
/// Panics if `params.events` is zero, `target_down` is outside `(0, 1)`,
/// `router_weight` is outside `[0, 1)`, `rate_per_sec` is not strictly
/// positive, or `topo` has no links.
#[must_use]
pub fn fault_trace(topo: &Topology, params: &FaultParams, seed: u64) -> FaultTrace {
    assert!(params.events > 0, "need at least one event");
    assert!(
        params.target_down > 0.0 && params.target_down < 1.0,
        "target_down must be in (0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&params.router_weight),
        "router_weight must be in [0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&params.glitch_weight),
        "glitch_weight must be in [0, 1)"
    );
    assert!(
        params.glitch_min_ns <= params.glitch_max_ns,
        "glitch duration range inverted"
    );
    assert!(params.rate_per_sec > 0.0, "rate must be positive");
    assert!(topo.link_count() > 0, "topology has no links to fail");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = DownSet::all_up(topo);
    let mut events = Vec::with_capacity(params.events as usize);
    let mean_gap_ns = 1.0e9 / params.rate_per_sec;
    let mut t_ns = 0.0f64;

    for _ in 0..params.events {
        let u: f64 = rng.gen();
        t_ns += -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean_gap_ns;

        // Linear steering towards the target degradation, exactly the
        // churn generator's occupancy model.
        let down_frac = state.down_links as f64 / topo.link_count() as f64;
        let p_down = (0.5 + (params.target_down - down_frac)).clamp(0.05, 0.95);
        let prefer_down = rng.gen::<f64>() < p_down;
        let router_event = rng.gen::<f64>() < params.router_weight;
        let glitch_event = rng.gen::<f64>() < params.glitch_weight;

        // A glitch targets a currently-up link and leaves the down-set
        // untouched (self-clearing); when every link is down, fall
        // through to the permanent draw (which repairs).
        let op = if glitch_event {
            draw_glitch(topo, &state, &mut rng, params)
        } else {
            None
        }
        .unwrap_or_else(|| draw_fault(topo, &mut state, &mut rng, prefer_down, router_event));
        events.push(FaultEvent {
            at_ns: t_ns as u64,
            op,
        });
    }
    FaultTrace { events }
}

/// A transient glitch on a currently-up link, with a duration drawn
/// uniformly from the params' range; `None` when no link is up.
fn draw_glitch(
    topo: &Topology,
    state: &DownSet,
    rng: &mut StdRng,
    params: &FaultParams,
) -> Option<FaultOp> {
    let cands: Vec<LinkId> = topo
        .links()
        .filter(|&l| !state.link_down[l.index()])
        .collect();
    if cands.is_empty() {
        return None;
    }
    let link = cands[rng.gen_range(0..cands.len())];
    let duration_ns = rng.gen_range(params.glitch_min_ns..=params.glitch_max_ns);
    Some(FaultOp::LinkGlitch { link, duration_ns })
}

/// One stateful-consistent fault op, falling back across kind and
/// direction when the preferred draw has no candidates (e.g. a repair
/// with nothing down). At least one direction always has candidates:
/// every link is either up (failable) or down.
fn draw_fault(
    topo: &Topology,
    state: &mut DownSet,
    rng: &mut StdRng,
    prefer_down: bool,
    router_event: bool,
) -> FaultOp {
    // Candidate routers: failures need a live router with a live link to
    // take with it; repairs need a previously failed router.
    let draw_router = |state: &DownSet, rng: &mut StdRng, down: bool| -> Option<RouterId> {
        let cands: Vec<RouterId> = topo
            .routers()
            .filter(|&r| {
                if down {
                    !state.router_down[r.index()]
                        && topo
                            .links()
                            .any(|l| adjacent(topo, l, r) && !state.link_down[l.index()])
                } else {
                    state.router_down[r.index()]
                }
            })
            .collect();
        (!cands.is_empty()).then(|| cands[rng.gen_range(0..cands.len())])
    };
    // Candidate links: failures draw from live links; repairs from down
    // links not held down by a failed router (the router repair raises
    // those).
    let draw_link = |state: &DownSet, rng: &mut StdRng, down: bool| -> Option<LinkId> {
        let cands: Vec<LinkId> = topo
            .links()
            .filter(|&l| {
                if down {
                    !state.link_down[l.index()]
                } else {
                    state.link_down[l.index()] && !held_by_down_router(topo, state, l)
                }
            })
            .collect();
        (!cands.is_empty()).then(|| cands[rng.gen_range(0..cands.len())])
    };

    let apply_router = |state: &mut DownSet, r: RouterId, down: bool| {
        state.router_down[r.index()] = down;
        for l in topo.links() {
            if adjacent(topo, l, r) && state.link_down[l.index()] != down {
                state.set_link(l, down);
            }
        }
    };

    for &dir in &[prefer_down, !prefer_down] {
        if router_event {
            if let Some(r) = draw_router(state, rng, dir) {
                apply_router(state, r, dir);
                return if dir {
                    FaultOp::RouterDown(r)
                } else {
                    FaultOp::RouterUp(r)
                };
            }
        }
        if let Some(l) = draw_link(state, rng, dir) {
            state.set_link(l, dir);
            return if dir {
                FaultOp::LinkDown(l)
            } else {
                FaultOp::LinkUp(l)
            };
        }
    }
    // Both link directions empty is impossible: every link is either up
    // or down, and a down link held by a down router implies that
    // router is a RouterUp candidate tried above.
    unreachable!("no drawable fault op");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{churn_trace, ChurnParams};
    use crate::generate::paper_workload;

    fn trace_for(seed: u64, events: u32) -> (FaultTrace, Topology) {
        let topo = Topology::mesh(4, 4, 2);
        let params = FaultParams::sparse(events);
        (fault_trace(&topo, &params, seed), topo)
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let (a, _) = trace_for(3, 400);
        let (b, _) = trace_for(3, 400);
        assert_eq!(a, b);
        let (c, _) = trace_for(4, 400);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_is_stateful_consistent() {
        // Replaying against a shadow down-set: no double failure, no
        // repair of a healthy link, router links move with the router.
        let (trace, topo) = trace_for(11, 1_000);
        let mut state = DownSet::all_up(&topo);
        let mut prev = 0u64;
        for e in &trace.events {
            assert!(e.at_ns >= prev, "time went backwards");
            prev = e.at_ns;
            match e.op {
                FaultOp::LinkDown(l) => {
                    assert!(!state.link_down[l.index()], "{l} failed twice");
                    state.set_link(l, true);
                }
                FaultOp::LinkUp(l) => {
                    assert!(state.link_down[l.index()], "{l} repaired while up");
                    assert!(
                        !held_by_down_router(&topo, &state, l),
                        "{l} repaired under a down router"
                    );
                    state.set_link(l, false);
                }
                FaultOp::RouterDown(r) => {
                    assert!(!state.router_down[r.index()], "{r} failed twice");
                    state.router_down[r.index()] = true;
                    for l in topo.links() {
                        if adjacent(&topo, l, r) {
                            state.set_link(l, true);
                        }
                    }
                }
                FaultOp::RouterUp(r) => {
                    assert!(state.router_down[r.index()], "{r} repaired while up");
                    state.router_down[r.index()] = false;
                    for l in topo.links() {
                        if adjacent(&topo, l, r) {
                            state.set_link(l, false);
                        }
                    }
                }
                FaultOp::LinkGlitch { link, duration_ns } => {
                    // Glitches hit only up links and never enter the
                    // down-set (self-clearing).
                    assert!(!state.link_down[link.index()], "{link} glitched while down");
                    assert!(
                        (2_000..=40_000).contains(&duration_ns),
                        "duration off-range"
                    );
                }
            }
        }
        assert!(trace.failures() > 0 && trace.repairs() > 0 && trace.glitches() > 0);
        assert_eq!(
            trace.failures() + trace.repairs() + trace.glitches(),
            trace.len() as u64
        );
    }

    #[test]
    fn permanent_only_draws_no_glitches() {
        let topo = Topology::mesh(4, 4, 2);
        let params = FaultParams::sparse(600).permanent_only();
        let trace = fault_trace(&topo, &params, 11);
        assert_eq!(trace.glitches(), 0);
        assert_eq!(trace.failures() + trace.repairs(), trace.len() as u64);
    }

    #[test]
    fn degradation_settles_near_target() {
        let topo = Topology::mesh(6, 6, 1);
        let params = FaultParams {
            events: 4_000,
            ..FaultParams::sparse(4_000)
        };
        let trace = fault_trace(&topo, &params, 9);
        let mut state = DownSet::all_up(&topo);
        for e in &trace.events {
            match e.op {
                FaultOp::LinkDown(l) => state.set_link(l, true),
                FaultOp::LinkUp(l) => state.set_link(l, false),
                FaultOp::RouterDown(r) | FaultOp::RouterUp(r) => {
                    let down = matches!(e.op, FaultOp::RouterDown(_));
                    state.router_down[r.index()] = down;
                    for l in topo.links() {
                        if adjacent(&topo, l, r) {
                            state.set_link(l, down);
                        }
                    }
                }
                FaultOp::LinkGlitch { .. } => {}
            }
        }
        let frac = state.down_links as f64 / topo.link_count() as f64;
        // Router events are lumpy (one event can down 10+ links), so the
        // band around the 4% target is generous but bounded.
        assert!(frac < 0.25, "settled at {frac}");
    }

    #[test]
    fn scenario_merge_is_time_ordered_and_complete() {
        let spec = paper_workload(42);
        let churn = churn_trace(&spec, &ChurnParams::steady(500), 7);
        let faults = fault_trace(spec.topology(), &FaultParams::sparse(40), 7);
        let scenario = FaultScenario::merge(&churn, &faults);
        assert_eq!(scenario.len(), churn.len() + faults.len());
        assert_eq!(scenario.churn_ops(), churn.len() as u64);
        assert_eq!(scenario.fault_ops(), faults.len() as u64);
        let mut prev = 0u64;
        for e in &scenario.events {
            assert!(e.at_ns >= prev);
            prev = e.at_ns;
        }
        // Each side's internal order is preserved.
        let churn_side: Vec<&ChurnOp> = scenario
            .events
            .iter()
            .filter_map(|e| match &e.op {
                ScenarioOp::Churn(op) => Some(op),
                ScenarioOp::Fault(_) => None,
            })
            .collect();
        assert!(churn_side
            .iter()
            .zip(&churn.events)
            .all(|(a, b)| **a == b.op));
        let fault_side: Vec<FaultOp> = scenario
            .events
            .iter()
            .filter_map(|e| match e.op {
                ScenarioOp::Fault(op) => Some(op),
                ScenarioOp::Churn(_) => None,
            })
            .collect();
        assert!(fault_side
            .iter()
            .zip(&faults.events)
            .all(|(a, b)| *a == b.op));
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_events_rejected() {
        let topo = Topology::mesh(2, 2, 1);
        let params = FaultParams {
            events: 0,
            ..FaultParams::default()
        };
        let _ = fault_trace(&topo, &params, 0);
    }
}
