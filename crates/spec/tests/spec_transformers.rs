//! The clone-and-retarget transformers used by the simulator
//! cross-validation suite.

use aelite_spec::generate::paper_workload;
use aelite_spec::traffic::TrafficPattern;

#[test]
fn link_pipeline_transformer_rescales_latencies() {
    let spec = paper_workload(42);
    let meso = spec.with_link_pipeline_stages(1, 4);
    assert_eq!(meso.config().link_pipeline_stages, 1);
    assert_eq!(meso.connections().len(), spec.connections().len());
    for (a, b) in spec.connections().iter().zip(meso.connections()) {
        assert_eq!(b.max_latency_ns, a.max_latency_ns * 4);
        assert_eq!(a.id, b.id);
    }
}

#[test]
fn pattern_transformer_replaces_every_pattern() {
    let spec = paper_workload(42).with_pattern(TrafficPattern::Saturating);
    assert!(spec
        .connections()
        .iter()
        .all(|c| c.pattern == TrafficPattern::Saturating));
}
